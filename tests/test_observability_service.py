"""Observability across the process-isolation boundary.

Worker spans captured inside a forked sandbox must come back on the
pickled ``CompileResult`` and re-parent into the supervisor's trace;
a worker that dies uncleanly must leave its stderr tail in the failure
record and in the flight recorder.
"""

import pytest

from repro.compiler import CompileOptions
from repro.errors import WorkerCrashError, WorkerTimeoutError
from repro.kernels import get_kernel
from repro.observability import (
    Observability,
    ObservabilitySession,
    activate,
    validate_spans,
)
from repro.service import CompileService, FaultInjection, RetryPolicy, WorkerLimits


def _spec():
    return get_kernel("matmul-2x2-2x2").spec()


class TestForkReparenting:
    def test_worker_spans_adopted_into_supervisor_trace(self):
        service = CompileService(isolate=True)
        session = ObservabilitySession(Observability.on())
        with activate(session):
            result = service.compile_spec(
                _spec(),
                CompileOptions(observability=Observability.on()),
            )
        # The worker's own export still rides on the result...
        assert result.observability is not None
        assert result.observability.span_named("compile") is not None

        # ...and was merged under the supervisor's attempt span.
        spans = session.tracer.export()
        validate_spans(spans)
        by_name = {s["name"]: s for s in spans}
        assert {"service.compile", "service.attempt", "compile",
                "saturation"} <= set(by_name)
        attempt = by_name["service.attempt"]
        compile_root = by_name["compile"]
        assert compile_root["parent_id"] == attempt["span_id"]
        # The adopted spans really came from another process.
        assert compile_root["pid"] != attempt["pid"]
        # Worker-internal parentage survives adoption.
        assert by_name["saturation"]["parent_id"] == compile_root["span_id"]

    def test_in_process_service_also_adopts(self):
        service = CompileService(isolate=False)
        session = ObservabilitySession(Observability.on())
        with activate(session):
            service.compile_spec(
                _spec(), CompileOptions(observability=Observability.on())
            )
        by_name = {s["name"]: s for s in session.tracer.export()}
        assert by_name["compile"]["parent_id"] == (
            by_name["service.attempt"]["span_id"]
        )

    def test_service_spans_without_worker_observability(self):
        # Service-level tracing works even when the compile itself runs
        # with observability off (no worker spans to adopt).
        service = CompileService(isolate=True)
        session = ObservabilitySession(Observability.on())
        with activate(session):
            result = service.compile_spec(_spec(), CompileOptions())
        assert result.observability is None
        names = {s["name"] for s in session.tracer.export()}
        assert {"service.compile", "service.attempt"} <= names
        assert "compile" not in names


class TestStderrTail:
    def test_sigkill_crash_carries_stderr_tail(self):
        service = CompileService(
            isolate=True, policy=RetryPolicy(max_attempts=1)
        )
        session = ObservabilitySession(Observability.on())
        with activate(session), pytest.raises(WorkerCrashError) as info:
            service.compile_spec(
                _spec(), CompileOptions(),
                inject=FaultInjection(mode="sigkill"),
            )
        exc = info.value
        assert exc.stderr_tail is not None
        assert "injected worker fault: sigkill" in exc.stderr_tail
        # The tail is part of the printed failure record...
        assert "worker stderr" in str(exc)
        # ...and of the flight-recorder event stream.
        (crash,) = session.recorder.events_of("worker_crash")
        assert "sigkill" in crash["details"]["stderr_tail"]

    def test_raise_mode_tail_contains_traceback(self):
        service = CompileService(
            isolate=True, policy=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(Exception) as info:
            service.compile_spec(
                _spec(), CompileOptions(),
                inject=FaultInjection(mode="raise"),
            )
        # The worker survived long enough to ship an encoded error; its
        # stderr traceback lands in the reconstructed error's partials.
        tail = info.value.partial.get("stderr_tail", "")
        assert "injected worker fault" in tail
        assert "RuntimeError" in tail

    def test_kill_timeout_carries_stderr_tail(self):
        service = CompileService(
            isolate=True,
            policy=RetryPolicy(max_attempts=1),
            limits=WorkerLimits(kill_timeout=1.0),
        )
        session = ObservabilitySession(Observability.on())
        with activate(session), pytest.raises(WorkerTimeoutError) as info:
            service.compile_spec(
                _spec(), CompileOptions(),
                inject=FaultInjection(mode="hang"),
            )
        assert "injected worker fault: hang" in (info.value.stderr_tail or "")
        (ev,) = session.recorder.events_of("worker_timeout")
        assert ev["details"]["kill_timeout"] == 1.0

    def test_healthy_worker_leaves_no_tail_artifacts(self, tmp_path):
        import glob
        import tempfile

        service = CompileService(isolate=True)
        service.compile_spec(_spec(), CompileOptions())
        leftovers = glob.glob(
            tempfile.gettempdir() + "/repro-worker-matmul-2x2-2x2*"
        )
        assert leftovers == []


class TestServiceMetrics:
    def test_retry_and_crash_counters(self):
        service = CompileService(
            isolate=True, policy=RetryPolicy(max_attempts=2, backoff_base=0.01)
        )
        session = ObservabilitySession(Observability.on())
        with activate(session):
            # Crash on attempt 0, succeed on attempt 1.
            result = service.compile_spec(
                _spec(), CompileOptions(),
                inject=FaultInjection(mode="sigkill", attempts=(0,)),
            )
        assert result.diagnostics.attempts == 2
        samples = {
            name: value for name, labels, value in session.metrics.samples()
        }
        assert samples["repro_service_worker_crashes_total"] == 1
        assert samples["repro_service_retries_total"] == 1
