"""Term representation for the Diospyros vector DSL (paper Figure 3).

A *term* is an immutable tree.  Every node carries an operator name
(``op``), a tuple of child terms (``args``), and -- for the two leaf
operators only -- a ``value`` payload:

* ``Num``    -- a numeric literal; ``value`` is an ``int`` or ``float``.
* ``Symbol`` -- a named input array or scalar variable; ``value`` is a
  ``str``.

The full operator vocabulary mirrors the grammar in Figure 3 of the
paper and is catalogued in :mod:`repro.dsl.ops`.  Terms are hashable and
compare structurally, which is what both the e-graph hashcons layer and
the translation validator rely on.

The module also provides convenience constructors (:func:`add`,
:func:`vec`, :func:`get`, ...) so the rest of the code base can build
terms without spelling operator strings, and small structural helpers
(:func:`subterms`, :func:`term_size`, :func:`term_depth`,
:func:`substitute`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

Number = Union[int, float]

__all__ = [
    "Term",
    "Number",
    "num",
    "sym",
    "get",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "sqrt",
    "sgn",
    "call",
    "vec",
    "concat",
    "vec_add",
    "vec_minus",
    "vec_mul",
    "vec_div",
    "vec_mac",
    "vec_neg",
    "vec_sqrt",
    "vec_sgn",
    "lst",
    "subterms",
    "term_size",
    "term_depth",
    "substitute",
    "map_terms",
]


class Term:
    """An immutable, hash-consed-friendly DSL term.

    Instances are created once and never mutated; equality and hashing
    are structural and cached, so terms can be used freely as dictionary
    keys (the e-graph, LVN, and the canonicalizer all do).
    """

    __slots__ = ("op", "args", "value", "_hash")

    def __init__(
        self,
        op: str,
        args: Sequence["Term"] = (),
        value: Union[Number, str, None] = None,
    ) -> None:
        self.op = op
        self.args: Tuple[Term, ...] = tuple(args)
        self.value = value
        self._hash = hash((op, self.args, value))
        if op in ("Num", "Symbol"):
            if self.args:
                raise ValueError(f"leaf operator {op!r} takes no children")
            if value is None:
                raise ValueError(f"leaf operator {op!r} requires a value")
        elif value is not None and op != "Call":
            raise ValueError(f"operator {op!r} does not take a value payload")

    # -- identity ----------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.value == other.value
            and self.args == other.args
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- queries -----------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True for ``Num`` and ``Symbol`` terms."""
        return not self.args and self.op in ("Num", "Symbol")

    @property
    def is_num(self) -> bool:
        return self.op == "Num"

    @property
    def is_symbol(self) -> bool:
        return self.op == "Symbol"

    def is_zero(self) -> bool:
        """True when the term is the literal 0 (int or float)."""
        return self.op == "Num" and self.value == 0

    def is_one(self) -> bool:
        return self.op == "Num" and self.value == 1

    # -- display -----------------------------------------------------

    def __repr__(self) -> str:
        return f"Term({self.to_sexpr()})"

    def __str__(self) -> str:
        return self.to_sexpr()

    def to_sexpr(self) -> str:
        """Render as an s-expression, the paper's surface syntax."""
        if self.op == "Num":
            if isinstance(self.value, float) and self.value.is_integer():
                return str(int(self.value))
            return str(self.value)
        if self.op == "Symbol":
            return str(self.value)
        if self.op == "Call":
            head = f"{self.value}"
        else:
            head = self.op
        if not self.args:
            return f"({head})"
        inner = " ".join(a.to_sexpr() for a in self.args)
        return f"({head} {inner})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def num(value: Number) -> Term:
    """A numeric literal leaf."""
    return Term("Num", (), value)


def sym(name: str) -> Term:
    """A named symbol leaf (an input array or scalar variable)."""
    return Term("Symbol", (), name)


def get(array: Union[str, Term], index: Union[int, Term]) -> Term:
    """``(Get a i)`` -- element ``i`` of the flattened input array ``a``."""
    array_term = sym(array) if isinstance(array, str) else array
    index_term = num(index) if isinstance(index, int) else index
    return Term("Get", (array_term, index_term))


def add(a: Term, b: Term) -> Term:
    return Term("+", (a, b))


def sub(a: Term, b: Term) -> Term:
    return Term("-", (a, b))


def mul(a: Term, b: Term) -> Term:
    return Term("*", (a, b))


def div(a: Term, b: Term) -> Term:
    return Term("/", (a, b))


def neg(a: Term) -> Term:
    return Term("neg", (a,))


def sqrt(a: Term) -> Term:
    return Term("sqrt", (a,))


def sgn(a: Term) -> Term:
    return Term("sgn", (a,))


def call(name: str, *args: Term) -> Term:
    """An application of a user-defined (uninterpreted) scalar function."""
    return Term("Call", tuple(args), name)


def vec(*lanes: Term) -> Term:
    """``(Vec s0 s1 ...)`` -- build a vector from scalar lanes."""
    if not lanes:
        raise ValueError("Vec requires at least one lane")
    return Term("Vec", tuple(lanes))


def concat(a: Term, b: Term) -> Term:
    return Term("Concat", (a, b))


def vec_add(a: Term, b: Term) -> Term:
    return Term("VecAdd", (a, b))


def vec_minus(a: Term, b: Term) -> Term:
    return Term("VecMinus", (a, b))


def vec_mul(a: Term, b: Term) -> Term:
    return Term("VecMul", (a, b))


def vec_div(a: Term, b: Term) -> Term:
    return Term("VecDiv", (a, b))


def vec_mac(acc: Term, a: Term, b: Term) -> Term:
    """``(VecMAC acc a b)`` -- lanewise ``acc + a * b``."""
    return Term("VecMAC", (acc, a, b))


def vec_neg(a: Term) -> Term:
    return Term("VecNeg", (a,))


def vec_sqrt(a: Term) -> Term:
    return Term("VecSqrt", (a,))


def vec_sgn(a: Term) -> Term:
    return Term("VecSgn", (a,))


def lst(*items: Term) -> Term:
    """``(List e0 e1 ...)`` -- the top-level program: one entry per output
    element of the kernel (2-D outputs are flattened row-major)."""
    if not items:
        raise ValueError("List requires at least one element")
    return Term("List", tuple(items))


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm (including ``term`` itself), pre-order,
    visiting shared subtrees once per occurrence."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.args))


def term_size(term: Term) -> int:
    """Number of nodes in the term tree (occurrences, not unique nodes)."""
    return sum(1 for _ in subterms(term))


def unique_size(term: Term) -> int:
    """Number of *unique* subterms -- the size of the term's DAG, which
    is what the e-graph initially stores."""
    seen = set()
    stack = [term]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(current.args)
    return len(seen)


def term_depth(term: Term) -> int:
    """Height of the term tree; a leaf has depth 1."""
    if not term.args:
        return 1
    return 1 + max(term_depth(a) for a in term.args)


def substitute(term: Term, mapping: Dict[Term, Term]) -> Term:
    """Replace every occurrence of the keys of ``mapping`` (matched
    structurally) by the corresponding values, bottom-up."""
    cache: Dict[Term, Term] = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t in mapping:
            result = mapping[t]
        elif t.args:
            new_args = tuple(go(a) for a in t.args)
            result = t if new_args == t.args else Term(t.op, new_args, t.value)
        else:
            result = t
        cache[t] = result
        return result

    return go(term)


def map_terms(term: Term, fn: Callable[[Term], Optional[Term]]) -> Term:
    """Rebuild ``term`` bottom-up, replacing each node ``t`` (whose
    children have already been rewritten) by ``fn(t)`` when that returns
    a term, keeping ``t`` when it returns ``None``."""
    cache: Dict[Term, Term] = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        rebuilt = t
        if t.args:
            new_args = tuple(go(a) for a in t.args)
            if new_args != t.args:
                rebuilt = Term(t.op, new_args, t.value)
        replaced = fn(rebuilt)
        result = rebuilt if replaced is None else replaced
        cache[t] = result
        return result

    return go(term)
