"""Tests of the benchmark kernel references (repro.kernels) against
numpy oracles."""

import numpy as np
import pytest

from repro.kernels import (
    get_kernel,
    make_conv2d,
    make_matmul,
    make_qprod,
    make_qr,
    table1_kernels,
)


class TestRegistry:
    def test_twenty_one_kernels(self):
        kernels = table1_kernels()
        assert len(kernels) == 21

    def test_categories(self):
        counts = {}
        for k in table1_kernels():
            counts[k.category] = counts.get(k.category, 0) + 1
        assert counts == {"2DConv": 11, "MatMul": 7, "QProd": 1, "QRDecomp": 2}

    def test_get_kernel(self):
        k = get_kernel("matmul-2x3-3x3")
        assert k.params == {"m": 2, "k": 3, "n": 3}

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get_kernel("nope")

    def test_names_unique(self):
        names = [k.name for k in table1_kernels()]
        assert len(names) == len(set(names))

    def test_spec_cached(self):
        k = make_matmul(2, 2, 2)
        assert k.spec() is k.spec()


class TestMatMulReference:
    @pytest.mark.parametrize("m,k,n", [(2, 2, 2), (2, 3, 3), (3, 3, 3), (4, 4, 4)])
    def test_against_numpy(self, m, k, n, rng):
        kernel = make_matmul(m, k, n)
        inputs = kernel.random_inputs(1)
        out = kernel.reference_outputs(inputs)
        a = np.array(inputs["a"]).reshape(m, k)
        b = np.array(inputs["b"]).reshape(k, n)
        np.testing.assert_allclose(np.array(out).reshape(m, n), a @ b, rtol=1e-9)

    def test_output_count(self):
        assert make_matmul(2, 3, 5).n_outputs == 10


class TestConv2dReference:
    @pytest.mark.parametrize(
        "ir,ic,fr,fc", [(3, 3, 2, 2), (3, 5, 3, 3), (4, 4, 3, 3)]
    )
    def test_against_numpy_full_convolution(self, ir, ic, fr, fc):
        kernel = make_conv2d(ir, ic, fr, fc)
        inputs = kernel.random_inputs(2)
        out = np.array(kernel.reference_outputs(inputs)).reshape(
            ir + fr - 1, ic + fc - 1
        )
        image = np.array(inputs["i"]).reshape(ir, ic)
        filt = np.array(inputs["f"]).reshape(fr, fc)
        # Full 2-D convolution: out[r, c] = sum image[r-p, c-q] filt[p, q].
        expected = np.zeros_like(out)
        for r in range(out.shape[0]):
            for c in range(out.shape[1]):
                total = 0.0
                for p in range(fr):
                    for q in range(fc):
                        rr, cc = r - p, c - q
                        if 0 <= rr < ir and 0 <= cc < ic:
                            total += image[rr, cc] * filt[p, q]
                expected[r, c] = total
        np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_output_shape_matches_paper_example(self):
        """Section 2: 3x5 input, 3x3 filter -> 5x7 output."""
        kernel = make_conv2d(3, 5, 3, 3)
        assert kernel.n_outputs == 5 * 7


class TestQProdReference:
    def test_quaternion_product_against_numpy(self):
        kernel = make_qprod()
        inputs = kernel.random_inputs(3)
        out = kernel.reference_outputs(inputs)
        x1, y1, z1, w1 = inputs["q1"]
        x2, y2, z2, w2 = inputs["q2"]
        expected_q = [
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        ]
        np.testing.assert_allclose(out[:4], expected_q, rtol=1e-9)

    def test_rotation_is_orthogonal_action(self):
        """With a unit quaternion, |rotate(t2)| == |t2| (so
        t_out - t1 preserves length)."""
        kernel = make_qprod()
        q = np.array([0.18257419, 0.36514837, 0.54772256, 0.73029674])  # unit
        t1 = [0.0, 0.0, 0.0]
        t2 = [1.0, -2.0, 0.5]
        out = kernel.reference_outputs(
            {"q1": list(q), "t1": t1, "q2": [0, 0, 0, 1], "t2": t2}
        )
        rotated = np.array(out[4:])
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(t2), rel=1e-6)

    def test_identity_composition(self):
        kernel = make_qprod()
        out = kernel.reference_outputs(
            {
                "q1": [0, 0, 0, 1],  # identity rotation
                "t1": [0, 0, 0],
                "q2": [0.1, 0.2, 0.3, 0.9],
                "t2": [4, 5, 6],
            }
        )
        np.testing.assert_allclose(out, [0.1, 0.2, 0.3, 0.9, 4, 5, 6], rtol=1e-9)


class TestQRReference:
    @pytest.mark.parametrize("n", [3, 4])
    def test_qr_properties(self, n):
        kernel = make_qr(n)
        inputs = kernel.random_inputs(4)
        out = kernel.reference_outputs(inputs)
        q = np.array(out[: n * n]).reshape(n, n)
        r = np.array(out[n * n :]).reshape(n, n)
        a = np.array(inputs["a"]).reshape(n, n)
        np.testing.assert_allclose(q @ r, a, atol=1e-8)
        np.testing.assert_allclose(q @ q.T, np.eye(n), atol=1e-8)
        np.testing.assert_allclose(np.tril(r, -1), 0, atol=1e-8)

    def test_lift_produces_spec(self):
        kernel = make_qr(3)
        spec = kernel.spec()
        assert spec.n_outputs == 18
        # The spec uses sqrt, sgn, and division (Householder).
        sexpr = spec.term.to_sexpr()
        assert "sqrt" in sexpr and "sgn" in sexpr and "/" in sexpr
