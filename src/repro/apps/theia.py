"""Theia structure-from-motion case study (paper Section 5.7).

The paper ports the core of Theia's
``Camera::InitializeFromProjectionMatrix`` --
``DecomposeProjectionMatrix`` -- to the DSP, finds 61% of its runtime
inside a 3x3 QR decomposition from Eigen, and swaps in a
Diospyros-compiled QR kernel for a 2.1x end-to-end speedup.

We implement the same computation as a pipeline of fixed-size kernels
running on the cycle simulator:

1. **svd-project** -- project the 3x3 camera block to the nearest
   rotation via a one-sided Jacobi SVD (fixed two sweeps, unrolled
   Eigen-style code; identical in both configurations).
2. **rq-prepare**  -- form ``A = (E M)^T`` (E reverses rows), the
   standard RQ-via-QR trick.
3. **qr3**         -- 3x3 Householder QR of A.  *This is the kernel
   the experiment swaps*: Eigen's generic loop implementation vs the
   Diospyros-compiled kernel.
4. **rq-unpack**   -- recover the upper-triangular calibration
   ``K = E R^T E`` and rotation ``R = E Q^T``, with the positive-
   diagonal sign fix.
5. **position**    -- camera position ``c = -M^{-1} p4`` via the
   adjugate.

The host only moves buffers between stages (pointer passing in the
original C++); every arithmetic operation is simulated and accounted,
so the per-stage cycle profile -- including the QR share -- is
measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend.vir import Program
from ..baselines.eigen import eigen_qr
from ..baselines.trace import trace_kernel
from ..compiler import CompileOptions, compile_spec
from ..frontend.symbolic import sym_sgn, sym_sqrt
from ..kernels import make_qr
from ..kernels.base import Kernel
from ..machine import MachineConfig, SimulationResult, Simulator, fusion_g3

__all__ = [
    "TheiaResult",
    "decompose_projection_matrix",
    "diospyros_qr_program",
    "eigen_qr_program",
    "DEFAULT_PROJECTION_MATRIX",
]

#: A well-conditioned test projection matrix P = K [R | t] (row-major
#: 3x4): focal lengths 800/820, principal point (320, 240), a mild
#: rotation about an off-axis direction, camera offset from origin.
DEFAULT_PROJECTION_MATRIX: Tuple[float, ...] = (
    791.93, 118.64, 312.04, 1234.5,
    -62.19, 810.33, 255.52, -321.7,
    -0.171, 0.0723, 0.982, 2.5,
)


# ---------------------------------------------------------------------------
# Stage kernels (fixed 3x3 size)
# ---------------------------------------------------------------------------


def _jacobi_svd_rotation(m, r_out) -> None:
    """Closest rotation to ``m`` via one-sided Jacobi SVD.

    Two fixed sweeps over the (0,1), (0,2), (1,2) column pairs --
    data-independent control flow, like Eigen's fixed-size JacobiSVD
    unrolled for 3x3.  ``r_out = U * V^T`` with U's columns normalized.
    """
    u = [[m[i][j] for j in range(3)] for i in range(3)]
    v = [[1.0 if i == j else 0.0 for j in range(3)] for i in range(3)]
    for _sweep in range(2):
        for p, q in ((0, 1), (0, 2), (1, 2)):
            app = 0.0
            aqq = 0.0
            apq = 0.0
            for i in range(3):
                app = app + u[i][p] * u[i][p]
                aqq = aqq + u[i][q] * u[i][q]
                apq = apq + u[i][p] * u[i][q]
            # Rotation angle: tan(2θ) = 2 apq / (app - aqq).
            zeta = (aqq - app) / (2.0 * apq)
            abs_zeta = zeta * sym_sgn(zeta)
            t = sym_sgn(zeta) / (abs_zeta + sym_sqrt(1.0 + zeta * zeta))
            cs = 1.0 / sym_sqrt(1.0 + t * t)
            sn = cs * t
            for i in range(3):
                up = u[i][p]
                uq = u[i][q]
                u[i][p] = cs * up - sn * uq
                u[i][q] = sn * up + cs * uq
                vp = v[i][p]
                vq = v[i][q]
                v[i][p] = cs * vp - sn * vq
                v[i][q] = sn * vp + cs * vq
    # Normalize U's columns and form R = U_hat * V^T.
    inv_norm = []
    for j in range(3):
        norm_sq = 0.0
        for i in range(3):
            norm_sq = norm_sq + u[i][j] * u[i][j]
        inv_norm.append(1.0 / sym_sqrt(norm_sq))
    for i in range(3):
        for j in range(3):
            acc = 0.0
            for k in range(3):
                acc = acc + (u[i][k] * inv_norm[k]) * v[j][k]
            r_out[i][j] = acc


def _rq_prepare(m, a_out) -> None:
    """A = (E m)^T where E reverses rows: A[i][j] = m[2-j][i]."""
    for i in range(3):
        for j in range(3):
            a_out[i][j] = m[2 - j][i]


def _rq_unpack(qmat, rmat, k_out, r_out) -> None:
    """K = E R^T E, R = E Q^T, then scale so K's diagonal is positive
    (the usual RQ sign normalization)."""
    k_raw = [[0.0] * 3 for _ in range(3)]
    r_raw = [[0.0] * 3 for _ in range(3)]
    for i in range(3):
        for j in range(3):
            k_raw[i][j] = rmat[2 - j][2 - i]
            r_raw[i][j] = qmat[j][2 - i]
    for i in range(3):
        s = sym_sgn(k_raw[i][i])
        for j in range(3):
            k_out[j][i] = k_raw[j][i] * s  # scale K's column i
            r_out[i][j] = r_raw[i][j] * s  # and R's row i


def _camera_position(m, p4, c_out) -> None:
    """c = -m^{-1} p4 via the adjugate (Cramer's rule)."""
    a, b, c = m[0][0], m[0][1], m[0][2]
    d, e, f = m[1][0], m[1][1], m[1][2]
    g, h, i = m[2][0], m[2][1], m[2][2]
    cof00 = e * i - f * h
    cof01 = c * h - b * i
    cof02 = b * f - c * e
    cof10 = f * g - d * i
    cof11 = a * i - c * g
    cof12 = c * d - a * f
    cof20 = d * h - e * g
    cof21 = b * g - a * h
    cof22 = a * e - b * d
    det = a * cof00 + b * cof10 + c * cof20
    inv_det = 1.0 / det
    x, y, z = p4[0], p4[1], p4[2]
    c_out[0] = -(cof00 * x + cof01 * y + cof02 * z) * inv_det
    c_out[1] = -(cof10 * x + cof11 * y + cof12 * z) * inv_det
    c_out[2] = -(cof20 * x + cof21 * y + cof22 * z) * inv_det


def _stage_kernel(name: str, fn, inputs, outputs) -> Kernel:
    return Kernel(
        name=name,
        category="Theia",
        size_label="3x3",
        reference=fn,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
    )


def _stage_programs() -> Dict[str, Program]:
    """The fixed (non-swapped) stage kernels, compiled Eigen-style
    (unrolled with load caching)."""
    stages = {
        "svd-project": _stage_kernel(
            "theia-svd-project", _jacobi_svd_rotation, [("m", (3, 3))], [("r", (3, 3))]
        ),
        "rq-prepare": _stage_kernel(
            "theia-rq-prepare", _rq_prepare, [("m", (3, 3))], [("a", (3, 3))]
        ),
        "rq-unpack": _stage_kernel(
            "theia-rq-unpack",
            _rq_unpack,
            [("qm", (3, 3)), ("rm", (3, 3))],
            [("k", (3, 3)), ("r", (3, 3))],
        ),
        "position": _stage_kernel(
            "theia-position", _camera_position, [("m", (3, 3)), ("p4", 3)], [("c", 3)]
        ),
    }
    return {name: trace_kernel(k, "eigen", cache_loads=True) for name, k in stages.items()}


# ---------------------------------------------------------------------------
# QR variants
# ---------------------------------------------------------------------------


def eigen_qr_program() -> Program:
    """The baseline QR: Eigen's generic Householder loops."""
    return eigen_qr(make_qr(3))


def diospyros_qr_program(
    options: Optional[CompileOptions] = None,
) -> Program:
    """The Diospyros-compiled 3x3 QR kernel (what the case study swaps
    in).  Compilation takes tens of seconds; callers should reuse the
    returned program."""
    options = options or CompileOptions(
        time_limit=20.0,
        node_limit=150_000,
        validate=False,
        select_best_candidate=True,
    )
    return compile_spec(make_qr(3).spec(), options).program


# ---------------------------------------------------------------------------
# The end-to-end computation
# ---------------------------------------------------------------------------


@dataclass
class TheiaResult:
    """Outcome of one DecomposeProjectionMatrix run."""

    rotation_svd: List[float]
    calibration: List[float]
    rotation_rq: List[float]
    position: List[float]
    total_cycles: float
    stage_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def qr_share(self) -> float:
        """Fraction of total cycles spent in the QR kernel (the
        paper's 61% profile number for the Eigen baseline)."""
        return self.stage_cycles.get("qr3", 0.0) / self.total_cycles


def decompose_projection_matrix(
    projection: Sequence[float] = DEFAULT_PROJECTION_MATRIX,
    qr_program: Optional[Program] = None,
    machine: Optional[MachineConfig] = None,
) -> TheiaResult:
    """Run the camera-model decomposition on the simulator.

    ``qr_program`` selects the QR implementation (defaults to the
    Eigen baseline); everything else is identical across
    configurations, so cycle differences are attributable to the
    swapped kernel alone.
    """
    projection = list(projection)
    if len(projection) != 12:
        raise ValueError("projection matrix must have 12 (3x4) entries")
    machine = machine or fusion_g3()
    simulator = Simulator(machine)
    qr_program = qr_program or eigen_qr_program()
    stages = _stage_programs()

    # Host-side pointer split: M = P[:, :3], p4 = P[:, 3].
    m = [projection[r * 4 + c] for r in range(3) for c in range(3)]
    p4 = [projection[r * 4 + 3] for r in range(3)]

    stage_cycles: Dict[str, float] = {}

    def run(stage: str, program: Program, inputs) -> SimulationResult:
        result = simulator.run(program, inputs)
        stage_cycles[stage] = stage_cycles.get(stage, 0.0) + result.cycles
        return result

    svd = run("svd-project", stages["svd-project"], {"m": m})
    rotation_svd = svd.output("out")

    prep = run("rq-prepare", stages["rq-prepare"], {"m": m})
    a = prep.output("out")

    qr = run("qr3", qr_program, {"a": a})
    q_flat = qr.output("out")[:9]
    r_flat = qr.output("out")[9:18]

    unpack = run("rq-unpack", stages["rq-unpack"], {"qm": q_flat, "rm": r_flat})
    calibration = unpack.output("out")[:9]
    rotation_rq = unpack.output("out")[9:18]

    pos = run("position", stages["position"], {"m": m, "p4": p4})
    position = pos.output("out")

    return TheiaResult(
        rotation_svd=rotation_svd,
        calibration=calibration,
        rotation_rq=rotation_rq,
        position=position,
        total_cycles=sum(stage_cycles.values()),
        stage_cycles=stage_cycles,
    )
