"""Rewrite-rule families and ruleset assembly.

:func:`build_ruleset` is the single entry point the compiler driver
uses; its flags correspond to the paper's configuration knobs:

* ``enable_vector``  -- turn off for the Section 5.6 vectorization
  ablation (scalar rules and CSE only).
* ``enable_ac``      -- full associativity/commutativity, off by
  default exactly as in the paper's evaluation (Section 5.2).
* ``extra_rules``    -- user extensions, e.g. a target-specific
  ``recip`` rule (the Section 6 portability recipe).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..egraph.rewrite import Rewrite
from .ac import ac_rules, associativity_rules, commutativity_rules
from .arith import scalar_rules
from .mac import mac_rule
from .vector import (
    binary_vectorize_rule,
    list_split_rule,
    unary_vectorize_rule,
    vector_identity_rules,
)

__all__ = [
    "build_ruleset",
    "scalar_rules",
    "ac_rules",
    "associativity_rules",
    "commutativity_rules",
    "mac_rule",
    "list_split_rule",
    "binary_vectorize_rule",
    "unary_vectorize_rule",
    "vector_identity_rules",
]


def build_ruleset(
    width: int = 4,
    enable_scalar: bool = True,
    enable_vector: bool = True,
    enable_ac: bool = False,
    extra_rules: Optional[Sequence[Rewrite]] = None,
    only_tags: Optional[Sequence[str]] = None,
) -> List[Rewrite]:
    """Assemble the rewrite rules for one compilation.

    The vectorization rules are width-specific (``Vec`` chunks are
    machine-width), mirroring the paper's compile-time vector-width
    setting.

    ``only_tags`` keeps only rules whose tag set intersects it (the
    phase planner's rule-subset selection).  Untagged rules -- user
    extensions the planner knows nothing about -- always survive the
    filter; tag families shipped here are ``scalar``, ``split``,
    ``vectorize``, ``mac``, ``vector-identity``, ``vector`` (union of
    the four vector families), and ``ac``.
    """
    if width < 1:
        raise ValueError(f"vector width must be positive, got {width}")
    rules: List[Rewrite] = []
    if enable_scalar:
        rules.extend(scalar_rules())
    if enable_vector:
        rules.append(list_split_rule(width))
        rules.append(binary_vectorize_rule(width))
        rules.append(unary_vectorize_rule(width))
        rules.append(mac_rule(width))
        rules.extend(vector_identity_rules(width))
    if enable_ac:
        rules.extend(ac_rules())
    if extra_rules:
        rules.extend(extra_rules)
    if only_tags is not None:
        wanted = frozenset(only_tags)
        rules = [rule for rule in rules if rule.has_any_tag(wanted)]
    if not rules:
        raise ValueError("ruleset is empty; enable at least one family")
    return rules
