"""Pattern language and e-matching.

egg exposes a pattern DSL for simple syntactic rewrites (paper
Section 3.3); this module is our equivalent.  Patterns are terms whose
leaves may be *pattern variables*, written ``?x`` in the s-expression
syntax::

    (+ ?a (* ?b ?c))

E-matching searches the e-graph for every (e-class, substitution) pair
such that instantiating the pattern under the substitution yields a
term represented by that class.  The matcher is the classic recursive
backtracking procedure over e-nodes; it is not the fastest known
algorithm, but e-matching time is dominated by the custom vectorization
searchers in this workload, and the simple matcher is easy to verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..dsl.ast import Term
from ..dsl.parser import parse
from .egraph import EGraph, ENode

__all__ = [
    "Pattern",
    "PVar",
    "PNode",
    "pattern",
    "pattern_vars",
    "ematch",
    "match_in_class",
    "instantiate",
    "Subst",
    "MatchCounters",
]


@dataclass
class MatchCounters:
    """Instrumentation for one search: how many candidate classes were
    actually examined vs pruned by the dirty-set filter, and whether
    the search ran to completion (a deadline may truncate it).

    ``completed`` gates the scheduler's per-rule high-water mark: a
    truncated search must not advance its cursor, or the unexamined
    classes' matches would be lost forever.
    """

    visited: int = 0
    skipped: int = 0
    completed: bool = True


class _DeadlineGate:
    """Amortized deadline poll shared across a recursive e-match.

    ``Deadline.expired`` costs a ``perf_counter`` call, far too much
    per e-node; the gate polls every 64th check and latches once
    tripped so deep recursions unwind quickly.
    """

    __slots__ = ("deadline", "count", "tripped")

    _STRIDE = 64

    def __init__(self, deadline) -> None:
        self.deadline = deadline
        self.count = 0
        self.tripped = False

    def check(self) -> bool:
        if self.deadline is None:
            return False
        if self.tripped:
            return True
        self.count += 1
        # Poll on the very first check (so an already-expired deadline
        # stops even a tiny search immediately), then every 64th.
        if self.count % self._STRIDE != 1:
            return False
        if self.deadline.expired():
            self.tripped = True
        return self.tripped

#: A substitution binds pattern-variable names to e-class ids.
Subst = Dict[str, int]


@dataclass(frozen=True)
class PVar:
    """A pattern variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class PNode:
    """A concrete operator node in a pattern."""

    op: str
    args: Tuple["Pattern", ...] = ()
    value: Union[int, float, str, None] = None

    def __str__(self) -> str:
        if self.op == "Num":
            return str(self.value)
        if self.op == "Symbol":
            return str(self.value)
        head = self.value if self.op == "Call" else self.op
        if not self.args:
            return f"({head})"
        return f"({head} {' '.join(str(a) for a in self.args)})"


Pattern = Union[PVar, PNode]


def _from_term(term: Term) -> Pattern:
    """Convert a parsed term into a pattern, turning ``?x`` symbols
    into pattern variables."""
    if term.op == "Symbol" and str(term.value).startswith("?"):
        return PVar(str(term.value)[1:])
    return PNode(term.op, tuple(_from_term(a) for a in term.args), term.value)


def pattern(source: Union[str, Term, Pattern]) -> Pattern:
    """Build a pattern from s-expression text, a term, or pass a
    pattern through unchanged."""
    if isinstance(source, (PVar, PNode)):
        return source
    if isinstance(source, Term):
        return _from_term(source)
    return _from_term(parse(source))


def pattern_vars(pat: Pattern) -> List[str]:
    """All variable names occurring in the pattern, in first-seen order."""
    seen: List[str] = []

    def go(p: Pattern) -> None:
        if isinstance(p, PVar):
            if p.name not in seen:
                seen.append(p.name)
        else:
            for a in p.args:
                go(a)

    go(pat)
    return seen


def match_in_class(
    egraph: EGraph,
    pat: Pattern,
    eclass_id: int,
    subst: Subst = None,
    deadline=None,
    _gate: Optional[_DeadlineGate] = None,
) -> Iterator[Subst]:
    """Yield every substitution under which ``pat`` matches the given
    e-class, extending ``subst``.

    ``deadline`` (a :class:`repro.egraph.scheduler.Deadline`) is polled
    cooperatively *inside* the recursion -- one huge class can no
    longer blow far past the runner's wall-clock budget.  On expiry
    the generator simply stops yielding.
    """
    if _gate is None and deadline is not None:
        _gate = _DeadlineGate(deadline)
    subst = subst or {}
    eclass_id = egraph.find(eclass_id)
    if isinstance(pat, PVar):
        bound = subst.get(pat.name)
        if bound is None:
            extended = dict(subst)
            extended[pat.name] = eclass_id
            yield extended
        elif egraph.find(bound) == eclass_id:
            yield subst
        return
    for node in egraph.nodes_of(eclass_id):
        if _gate is not None and _gate.check():
            return
        if node.op != pat.op or node.value != pat.value:
            continue
        if len(node.children) != len(pat.args):
            continue
        yield from _match_children(
            egraph, pat.args, node.children, subst, 0, _gate
        )


def _match_children(
    egraph: EGraph,
    pats: Sequence[Pattern],
    children: Sequence[int],
    subst: Subst,
    index: int,
    gate: Optional[_DeadlineGate] = None,
) -> Iterator[Subst]:
    if index == len(pats):
        yield subst
        return
    for extended in match_in_class(
        egraph, pats[index], children[index], subst, _gate=gate
    ):
        yield from _match_children(
            egraph, pats, children, extended, index + 1, gate
        )


def ematch(
    egraph: EGraph,
    pat: Pattern,
    deadline=None,
    since: Optional[int] = None,
    counters: Optional[MatchCounters] = None,
) -> List[Tuple[int, Subst]]:
    """Match ``pat`` against every e-class; return (class id,
    substitution) pairs.  Multiple substitutions per class are all
    reported -- a rewrite may fire several ways on one class.

    ``deadline`` (a :class:`repro.egraph.scheduler.Deadline`) is polled
    cooperatively inside the recursive matcher; when it expires the
    matches found so far are returned (and ``counters.completed`` is
    cleared), letting the saturation runner's wall-clock budget
    interrupt a long e-match mid-rule -- even mid-class.

    ``since`` restricts the scan to classes whose subtree changed
    after that e-graph tick (see :attr:`repro.egraph.egraph.EGraph.tick`);
    ``None`` scans everything.  With upward dirty propagation this is
    exact: a match rooted at a clean class cannot have changed.
    """
    results: List[Tuple[int, Subst]] = []
    if isinstance(pat, PNode):
        # Only classes containing the root operator can match; the
        # e-graph's operator index prunes the scan, and the dirty-set
        # filter prunes it further for incremental searches.
        candidates = egraph.classes_with_op(pat.op, since=since, counters=counters)
    else:
        candidates = egraph.dirty_class_ids(since=since, counters=counters)
    gate = _DeadlineGate(deadline) if deadline is not None else None
    for cid in candidates:
        for subst in match_in_class(egraph, pat, cid, _gate=gate):
            results.append((egraph.find(cid), subst))
        if gate is not None and gate.check():
            if counters is not None:
                counters.completed = False
            break
    return results


def instantiate(egraph: EGraph, pat: Pattern, subst: Subst) -> int:
    """Add the instantiation of ``pat`` under ``subst`` to the e-graph
    and return its class id.  Every variable in the pattern must be
    bound."""
    if isinstance(pat, PVar):
        try:
            return egraph.find(subst[pat.name])
        except KeyError as exc:
            raise KeyError(f"unbound pattern variable ?{pat.name}") from exc
    children = tuple(instantiate(egraph, a, subst) for a in pat.args)
    return egraph.add(ENode(pat.op, children, pat.value))
