"""Canonicalization of scalar DSL terms over the theory of real
arithmetic.

The paper validates translations with Rosette/SMT "in the theory of
real arithmetic, rather than with precise floating point semantics"
(Section 3.4).  We discharge the same obligations with a decision
procedure specialized to this fragment: every scalar expression built
from +, -, *, /, neg over *atoms* is a **multivariate rational
function**; two such expressions are equal over the reals iff the
cross-multiplied polynomials agree.

Atoms are the irreducible leaves: ``Get`` accesses, scalar symbols, and
applications of the interpreted-but-non-rational operators ``sqrt`` /
``sgn`` and uninterpreted ``Call`` functions, each keyed by the
canonical form of its argument(s) -- so ``sqrt(a+b)`` and ``sqrt(b+a)``
are the same atom, while nothing is assumed about sqrt beyond
congruence (exactly the paper's treatment of user-defined functions as
uninterpreted).

Polynomials carry exact :class:`fractions.Fraction` coefficients, so
there is no numeric error in the procedure itself.  Expression swell is
real (the paper's QR 4x4 spec is hundreds of MB); :data:`CanonLimits`
bounds the work and :class:`CanonOverflow` signals the validator to
fall back to randomized differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple, Union

from ..dsl.ast import Term

__all__ = [
    "Atom",
    "Poly",
    "Rational",
    "CanonOverflow",
    "CanonLimits",
    "canonicalize",
    "equivalent",
]


class CanonOverflow(RuntimeError):
    """The polynomial form exceeded the configured size limit."""


@dataclass(frozen=True)
class CanonLimits:
    """Resource bounds for canonicalization."""

    #: Maximum number of monomials a single polynomial may hold.
    max_terms: int = 20_000
    #: Total monomial-operation budget for one canonicalization or
    #: equivalence query; deep rational nests (QR-style kernels)
    #: explode multiplicatively and must bail out to randomized
    #: validation *before* burning minutes, not after.
    max_work: int = 400_000
    #: Maximum size (monomial count, numerator + denominator) of a
    #: rational form used as a sqrt/sgn/call atom key.  Beyond this the
    #: keys themselves dominate runtime.
    max_atom_key: int = 120


class _Work:
    """Mutable work counter shared across one canonicalization."""

    __slots__ = ("remaining",)

    def __init__(self, limits: "CanonLimits") -> None:
        self.remaining = limits.max_work

    def charge(self, amount: int) -> None:
        self.remaining -= amount
        if self.remaining < 0:
            raise CanonOverflow(
                "canonicalization work budget exhausted; "
                "fall back to randomized validation"
            )


#: An atom is a hashable key: ("get", array, index), ("sym", name),
#: ("sqrt", arg_key), ("sgn", arg_key) or ("call", name, arg_keys).
Atom = Tuple

#: A monomial maps each atom to its (positive integer) power; stored as
#: a sorted tuple of (atom, power) pairs so it hashes.
Monomial = Tuple[Tuple[Atom, int], ...]

_EMPTY_MONOMIAL: Monomial = ()


class Poly:
    """A multivariate polynomial with Fraction coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Dict[Monomial, Fraction] = None) -> None:
        self.terms: Dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0:
                    self.terms[mono] = coeff

    # Constructors -----------------------------------------------------

    @staticmethod
    def constant(value: Union[int, float, Fraction]) -> "Poly":
        coeff = Fraction(value) if not isinstance(value, Fraction) else value
        return Poly({_EMPTY_MONOMIAL: coeff}) if coeff != 0 else Poly()

    @staticmethod
    def atom(a: Atom) -> "Poly":
        return Poly({((a, 1),): Fraction(1)})

    # Queries ----------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def as_constant(self) -> Union[Fraction, None]:
        if not self.terms:
            return Fraction(0)
        if len(self.terms) == 1 and _EMPTY_MONOMIAL in self.terms:
            return self.terms[_EMPTY_MONOMIAL]
        return None

    def key(self) -> Tuple:
        """A canonical hashable form (sorted term list)."""
        return tuple(sorted(self.terms.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"Poly({len(self.terms)} terms)"

    # Arithmetic -------------------------------------------------------

    def add(self, other: "Poly", limits: CanonLimits, work: "_Work" = None) -> "Poly":
        if work is not None:
            work.charge(len(other.terms))
        result = dict(self.terms)
        for mono, coeff in other.terms.items():
            new = result.get(mono, Fraction(0)) + coeff
            if new == 0:
                result.pop(mono, None)
            else:
                result[mono] = new
        _check(result, limits)
        out = Poly()
        out.terms = result
        return out

    def neg(self) -> "Poly":
        out = Poly()
        out.terms = {m: -c for m, c in self.terms.items()}
        return out

    def mul(self, other: "Poly", limits: CanonLimits, work: "_Work" = None) -> "Poly":
        result: Dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                if work is not None:
                    # Charge by actual monomial width: giant nested
                    # atom keys make each product expensive.
                    work.charge(1 + len(m1) + len(m2))
                mono = _mul_monomials(m1, m2)
                new = result.get(mono, Fraction(0)) + c1 * c2
                if new == 0:
                    result.pop(mono, None)
                else:
                    result[mono] = new
            _check(result, limits)
        out = Poly()
        out.terms = result
        return out

    def scale(self, factor: Fraction) -> "Poly":
        if factor == 0:
            return Poly()
        out = Poly()
        out.terms = {m: c * factor for m, c in self.terms.items()}
        return out


def _check(terms: Dict[Monomial, Fraction], limits: CanonLimits) -> None:
    if len(terms) > limits.max_terms:
        raise CanonOverflow(
            f"polynomial exceeded {limits.max_terms} monomials; "
            "fall back to randomized validation"
        )


def _mul_monomials(a: Monomial, b: Monomial) -> Monomial:
    powers: Dict[Atom, int] = dict(a)
    for atom, power in b:
        powers[atom] = powers.get(atom, 0) + power
    return tuple(sorted(powers.items()))


@dataclass
class Rational:
    """A rational function num/den with a non-zero denominator."""

    num: Poly
    den: Poly

    def key(self) -> Tuple:
        """A *normalized* hashable form: both polynomials scaled so the
        denominator's first (sorted) coefficient is 1.  Not fully
        reduced (no polynomial GCD), but stable enough to key atoms."""
        den_key = self.den.key()
        if not den_key:
            raise ZeroDivisionError("rational function with zero denominator")
        lead = den_key[0][1]
        return (self.num.scale(1 / lead).key(), self.den.scale(1 / lead).key())


def canonicalize(term: Term, limits: CanonLimits = None) -> Rational:
    """Canonical rational form of a scalar term.

    Raises :class:`CanonOverflow` when the polynomial form explodes and
    ``ZeroDivisionError`` on division by a polynomial that is
    *identically* zero (division by a possibly-zero denominator is the
    spec author's obligation, as in the paper).
    """
    limits = limits or CanonLimits()
    return _canonicalize_with(term, limits, _Work(limits))


def _canonicalize_with(term: Term, limits: CanonLimits, work: "_Work") -> Rational:
    cache: Dict[Term, Rational] = {}

    def go(t: Term) -> Rational:
        hit = cache.get(t)
        if hit is not None:
            return hit
        result = _canon_node(t, go, limits, work)
        cache[t] = result
        return result

    return go(term)


def _canon_node(t: Term, go, limits: CanonLimits, work: "_Work") -> Rational:
    one = Poly.constant(1)
    op = t.op
    if op == "Num":
        return Rational(Poly.constant(t.value), one)  # type: ignore[arg-type]
    if op == "Symbol":
        return Rational(Poly.atom(("sym", str(t.value))), one)
    if op == "Get":
        array, index = t.args
        if array.op != "Symbol" or index.op != "Num":
            raise ValueError(f"non-canonical Get: {t}")
        return Rational(
            Poly.atom(("get", str(array.value), int(index.value))), one  # type: ignore[arg-type]
        )
    if op in ("sqrt", "sgn"):
        arg = go(t.args[0])
        return Rational(Poly.atom((op, _atom_key(arg, limits))), one)
    if op == "Call":
        args = tuple(_atom_key(go(a), limits) for a in t.args)
        return Rational(Poly.atom(("call", str(t.value), args)), one)
    if op == "neg":
        a = go(t.args[0])
        return Rational(a.num.neg(), a.den)
    if op == "+":
        a, b = go(t.args[0]), go(t.args[1])
        num = a.num.mul(b.den, limits, work).add(
            b.num.mul(a.den, limits, work), limits, work
        )
        return Rational(num, a.den.mul(b.den, limits, work))
    if op == "-":
        a, b = go(t.args[0]), go(t.args[1])
        num = a.num.mul(b.den, limits, work).add(
            b.num.mul(a.den, limits, work).neg(), limits, work
        )
        return Rational(num, a.den.mul(b.den, limits, work))
    if op == "*":
        a, b = go(t.args[0]), go(t.args[1])
        return Rational(a.num.mul(b.num, limits, work), a.den.mul(b.den, limits, work))
    if op == "/":
        a, b = go(t.args[0]), go(t.args[1])
        if b.num.is_zero():
            raise ZeroDivisionError(f"division by identically-zero term in {t}")
        return Rational(a.num.mul(b.den, limits, work), a.den.mul(b.num, limits, work))
    raise ValueError(f"operator {op!r} is not a scalar expression")


def _atom_key(rational: Rational, limits: CanonLimits) -> Tuple:
    """Key a non-rational operator's argument; refuses oversized keys
    (their hashing/sorting would dominate the whole procedure)."""
    size = len(rational.num.terms) + len(rational.den.terms)
    if size > limits.max_atom_key:
        raise CanonOverflow(
            f"atom key would have {size} monomials "
            f"(limit {limits.max_atom_key}); fall back to randomized validation"
        )
    return rational.key()


def equivalent(t1: Term, t2: Term, limits: CanonLimits = None) -> bool:
    """Decide equality of two scalar terms over the reals.

    Cross-multiplies the rational forms, so no polynomial division is
    needed: a/b == c/d  iff  a*d == c*b.
    """
    limits = limits or CanonLimits()
    work = _Work(limits)
    r1 = _canonicalize_with(t1, limits, work)
    r2 = _canonicalize_with(t2, limits, work)
    left = r1.num.mul(r2.den, limits, work)
    right = r2.num.mul(r1.den, limits, work)
    return left == right
