"""Mutation engine: small semantic perturbations of kernel specs.

Coverage-guided fuzzing keeps any kernel that exhibited a new compiler
behavior and mutates it further; the mutation vocabulary therefore
targets the behavior planes the coverage map observes:

* structural edits (deepen, graft, op swap) reach new rule firings and
  e-class shapes;
* output-list edits (duplicate / add / drop / permute lanes) change
  chunking, zero padding, and shuffle selection in the backend;
* index and array edits (reindex, cross-array gets, growing or adding
  input arrays) steer the select/shuffle lowering paths and the
  single-array-vs-cross-array cost preference;
* constant tweaks probe constant folding and literal-lane handling.

Every move stays inside the fuzz oracle's *safe envelope*: only
``+ - * neg`` and division by constants bounded away from zero, and
only constants that are exact in binary floating point -- a mutant must
never diverge because of sampled-zero denominators or accumulated
rounding, or the oracle drowns in false positives.

All randomness comes from the caller's RNG (derive it with
:func:`repro.seeding.stable_rng`), so campaigns replay byte-identically.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..dsl.ast import Term, get, num
from ..frontend.lift import ArrayDecl, Spec

__all__ = ["MUTATIONS", "mutate", "rebuild_spec"]

#: Envelope caps.  Deliberately far beyond ``random_spec``'s fixed
#: envelope (6 outputs, 2 inputs of length <= 6, depth 3): the guided
#: fuzzer's edge over blind sampling is exactly the region only
#: compounding mutations can reach -- four-chunk output buffers, three-
#: and four-array gathers, deep accumulation chains.
MAX_OUTPUTS = 16
MAX_INPUTS = 4
MAX_INPUT_LEN = 16

_SAFE_CONSTS = (-2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 1.0, 1.5, 2.0)
_SAFE_DENOMS = (-2.0, -1.5, 1.5, 2.0, 4.0)
_BINOPS = ("+", "-", "*")

Path = Tuple[int, ...]


def rebuild_spec(
    name: str, inputs: Tuple[ArrayDecl, ...], elements: List[Term]
) -> Spec:
    """Assemble a fuzz-shaped spec (single flat ``out`` buffer)."""
    return Spec(
        name=name,
        inputs=inputs,
        outputs=(ArrayDecl("out", len(elements)),),
        term=Term("List", tuple(elements)),
    )


# ----------------------------------------------------------------------
# Term surgery
# ----------------------------------------------------------------------


def _paths(term: Term) -> List[Tuple[Path, Term]]:
    """Pre-order (path, node) pairs; paths index into ``args`` chains.

    Two regions are off-limits to generic moves, because editing them
    breaks the safe envelope rather than exploring it:

    * ``Get`` internals -- the Symbol and index-``Num`` children are
      *addresses*, not values; rewriting an index constant produces an
      out-of-range access.  Index edits go through the dedicated
      ``reindex-get`` / ``cross-get`` moves, which stay in bounds by
      construction.
    * ``/`` denominators -- the generator and ``div-const`` only ever
      divide by constants bounded away from zero; a generic move
      landing there could install ``0.0`` or a sign-crossing
      expression, and the resulting divide-by-zero would be a bug in
      the *fuzzer's input*, not in the compiler.
    """
    out: List[Tuple[Path, Term]] = []
    stack: List[Tuple[Path, Term]] = [((), term)]
    while stack:
        path, node = stack.pop()
        out.append((path, node))
        if node.op == "Get":
            continue
        last = 0 if node.op == "/" else len(node.args) - 1
        for i in range(last, -1, -1):
            stack.append((path + (i,), node.args[i]))
    return out


def _replace(term: Term, path: Path, new: Term) -> Term:
    if not path:
        return new
    head, rest = path[0], path[1:]
    args = list(term.args)
    args[head] = _replace(args[head], rest, new)
    return Term(term.op, tuple(args), term.value)


def _get_paths(term: Term) -> List[Tuple[Path, Term]]:
    return [
        (p, n)
        for p, n in _paths(term)
        if n.op == "Get" and n.args[0].op == "Symbol" and n.args[1].op == "Num"
    ]


def _random_leaf(rng: random.Random, inputs: Tuple[ArrayDecl, ...]) -> Term:
    if rng.random() < 0.25:
        return num(rng.choice(_SAFE_CONSTS))
    decl = inputs[rng.randrange(len(inputs))]
    return get(decl.name, rng.randrange(decl.length))


# ----------------------------------------------------------------------
# Moves.  Each takes (inputs, elements, rng) and returns the mutated
# (inputs, elements) or None when inapplicable.
# ----------------------------------------------------------------------

Move = Callable[
    [Tuple[ArrayDecl, ...], List[Term], random.Random],
    Optional[Tuple[Tuple[ArrayDecl, ...], List[Term]]],
]


def _pick_element(elements: List[Term], rng: random.Random) -> int:
    return rng.randrange(len(elements))


def _tweak_const(inputs, elements, rng):
    i = _pick_element(elements, rng)
    nums = [(p, n) for p, n in _paths(elements[i]) if n.op == "Num"]
    if not nums:
        return None
    path, node = nums[rng.randrange(len(nums))]
    fresh = rng.choice([c for c in _SAFE_CONSTS if c != node.value] or _SAFE_CONSTS)
    elements = list(elements)
    elements[i] = _replace(elements[i], path, num(fresh))
    return inputs, elements


def _swap_op(inputs, elements, rng):
    i = _pick_element(elements, rng)
    bins = [(p, n) for p, n in _paths(elements[i]) if n.op in _BINOPS]
    if not bins:
        return None
    path, node = bins[rng.randrange(len(bins))]
    op = rng.choice([o for o in _BINOPS if o != node.op])
    elements = list(elements)
    elements[i] = _replace(elements[i], path, Term(op, node.args))
    return inputs, elements


def _negate(inputs, elements, rng):
    i = _pick_element(elements, rng)
    paths = _paths(elements[i])
    path, node = paths[rng.randrange(len(paths))]
    elements = list(elements)
    elements[i] = _replace(elements[i], path, Term("neg", (node,)))
    return inputs, elements


def _div_const(inputs, elements, rng):
    i = _pick_element(elements, rng)
    paths = _paths(elements[i])
    path, node = paths[rng.randrange(len(paths))]
    elements = list(elements)
    wrapped = Term("/", (node, num(rng.choice(_SAFE_DENOMS))))
    elements[i] = _replace(elements[i], path, wrapped)
    return inputs, elements


def _deepen(inputs, elements, rng):
    i = _pick_element(elements, rng)
    leaves = [(p, n) for p, n in _paths(elements[i]) if n.op in ("Num", "Get")]
    if not leaves:
        return None
    path, node = leaves[rng.randrange(len(leaves))]
    other = _random_leaf(rng, inputs)
    grown = Term(rng.choice(_BINOPS), (node, other))
    elements = list(elements)
    elements[i] = _replace(elements[i], path, grown)
    return inputs, elements


def _graft(inputs, elements, rng):
    """Graft a random subexpression of one output into another --
    creates the cross-output DAG sharing LVN and memoized lowering
    exist for."""
    if len(elements) < 2:
        return None
    src = _pick_element(elements, rng)
    dst = rng.choice([j for j in range(len(elements)) if j != src])
    donor_paths = _paths(elements[src])
    _, donor = donor_paths[rng.randrange(len(donor_paths))]
    target_paths = _paths(elements[dst])
    path, _ = target_paths[rng.randrange(len(target_paths))]
    elements = list(elements)
    elements[dst] = _replace(elements[dst], path, donor)
    return inputs, elements


def _dup_output(inputs, elements, rng):
    if len(elements) >= MAX_OUTPUTS:
        return None
    i = _pick_element(elements, rng)
    elements = list(elements)
    elements.insert(rng.randrange(len(elements) + 1), elements[i])
    return inputs, elements


def _drop_output(inputs, elements, rng):
    if len(elements) <= 1:
        return None
    elements = list(elements)
    del elements[rng.randrange(len(elements))]
    return inputs, elements


def _add_output(inputs, elements, rng):
    if len(elements) >= MAX_OUTPUTS:
        return None
    a, b = _random_leaf(rng, inputs), _random_leaf(rng, inputs)
    elements = list(elements) + [Term(rng.choice(_BINOPS), (a, b))]
    return inputs, elements


def _permute_outputs(inputs, elements, rng):
    if len(elements) < 2:
        return None
    elements = list(elements)
    rng.shuffle(elements)
    return inputs, elements


def _reindex_get(inputs, elements, rng):
    i = _pick_element(elements, rng)
    gets = _get_paths(elements[i])
    if not gets:
        return None
    path, node = gets[rng.randrange(len(gets))]
    array = str(node.args[0].value)
    length = next((d.length for d in inputs if d.name == array), None)
    if length is None or length < 2:
        return None
    index = rng.randrange(length)
    elements = list(elements)
    elements[i] = _replace(elements[i], path, get(array, index))
    return inputs, elements


def _cross_get(inputs, elements, rng):
    """Retarget a Get at a different input array (clamped index) --
    drives cross-array gathers, i.e. the vselect lowering path."""
    if len(inputs) < 2:
        return None
    i = _pick_element(elements, rng)
    gets = _get_paths(elements[i])
    if not gets:
        return None
    path, node = gets[rng.randrange(len(gets))]
    current = str(node.args[0].value)
    others = [d for d in inputs if d.name != current]
    decl = others[rng.randrange(len(others))]
    index = min(int(node.args[1].value), decl.length - 1)
    elements = list(elements)
    elements[i] = _replace(elements[i], path, get(decl.name, index))
    return inputs, elements


def _grow_input(inputs, elements, rng):
    growable = [k for k, d in enumerate(inputs) if d.length < MAX_INPUT_LEN]
    if not growable:
        return None
    k = rng.choice(growable)
    decl = inputs[k]
    grown = ArrayDecl(decl.name, min(MAX_INPUT_LEN, decl.length + rng.randint(1, 2)))
    inputs = inputs[:k] + (grown,) + inputs[k + 1 :]
    return inputs, list(elements)


def _add_input(inputs, elements, rng):
    if len(inputs) >= MAX_INPUTS or len(elements) >= MAX_OUTPUTS:
        return None
    taken = {d.name for d in inputs}
    name = next(f"in{k}" for k in range(MAX_INPUTS + 1) if f"in{k}" not in taken)
    decl = ArrayDecl(name, rng.randint(1, 6))
    inputs = inputs + (decl,)
    # Reference the new array immediately so it is never dead weight.
    use = get(name, rng.randrange(decl.length))
    elements = list(elements) + [Term(rng.choice(_BINOPS), (use, _random_leaf(rng, inputs)))]
    return inputs, elements


MUTATIONS: Dict[str, Move] = {
    "tweak-const": _tweak_const,
    "swap-op": _swap_op,
    "negate": _negate,
    "div-const": _div_const,
    "deepen": _deepen,
    "graft": _graft,
    "dup-output": _dup_output,
    "drop-output": _drop_output,
    "add-output": _add_output,
    "permute-outputs": _permute_outputs,
    "reindex-get": _reindex_get,
    "cross-get": _cross_get,
    "grow-input": _grow_input,
    "add-input": _add_input,
}

#: Sampling weights.  Growth moves dominate: the coverage planes that
#: stay unsaturated longest (rule match-load buckets, e-class shapes,
#: opcode-count buckets) all reward *larger and deeper* kernels, so a
#: mutator that mostly grows its parents out-explores one that shuffles
#: them in place.  Shrinking is the shrinker's job, not the fuzzer's.
_MOVE_WEIGHTS: Dict[str, int] = {
    "tweak-const": 1,
    "swap-op": 1,
    "negate": 1,
    "div-const": 1,
    "deepen": 4,
    "graft": 2,
    "dup-output": 1,
    "drop-output": 1,
    "add-output": 3,
    "permute-outputs": 1,
    "reindex-get": 1,
    "cross-get": 2,
    "grow-input": 2,
    "add-input": 2,
}

_MOVE_ORDER = [n for n, w in _MOVE_WEIGHTS.items() for _ in range(w)]


def mutate(
    spec: Spec,
    rng: random.Random,
    name: Optional[str] = None,
    moves: Optional[int] = None,
    max_attempts: int = 8,
) -> Spec:
    """A mutated variant of ``spec``, ``moves`` (default 1-3, sampled)
    stacked edits deep.

    Stacking matters: a single move rarely leaves the random
    generator's envelope, but two or three compounding edits (grow an
    input, then cross-get into it, then deepen) reach register
    pressures and gather patterns fresh sampling cannot.  Falls back to
    the original (renamed) if every sampled move is inapplicable --
    callers need not special-case that; the duplicate is simply never
    novel."""
    inputs = tuple(spec.inputs)
    elements = list(spec.term.args)
    if moves is None:
        # 30% "havoc": a long burst of stacked moves that jumps deep
        # into the expanded envelope (16 outputs, 4 arrays, length-16
        # gathers) in one generation instead of drifting there over
        # many.  That region is unreachable for the blind generator,
        # so havoc mutants are where guided coverage separates.
        moves = rng.randint(8, 16) if rng.random() < 0.3 else rng.randint(2, 5)
    applied = 0
    for _ in range(max_attempts + moves):
        if applied >= moves:
            break
        move_name = _MOVE_ORDER[rng.randrange(len(_MOVE_ORDER))]
        mutated = MUTATIONS[move_name](inputs, elements, rng)
        if mutated is not None:
            inputs, elements = mutated
            applied += 1
    return rebuild_spec(name or f"{spec.name}-mut", inputs, elements)
