"""Unit tests for translation validation (repro.validation)."""

import pytest

from repro.dsl import parse
from repro.frontend import lift
from repro.validation import (
    CanonLimits,
    CanonOverflow,
    canonicalize,
    equivalent,
    flatten_to_scalars,
    validate,
)


class TestCanonEquivalence:
    EQUIVALENT = [
        ("(+ a b)", "(+ b a)"),
        ("(* a (+ b c))", "(+ (* a b) (* a c))"),
        ("(- a a)", "0"),
        ("(+ (+ a b) c)", "(+ a (+ b c))"),
        ("(* (Get x 0) 2)", "(+ (Get x 0) (Get x 0))"),
        ("(neg a)", "(- 0 a)"),
        ("(/ (* a b) b)", "a"),  # equal as rational functions
        ("(/ a 2)", "(* a 0.5)"),
        ("(- (* a a) (* b b))", "(* (+ a b) (- a b))"),
        ("(+ (/ a b) (/ c d))", "(/ (+ (* a d) (* c b)) (* b d))"),
        ("(sqrt (+ a b))", "(sqrt (+ b a))"),  # atom congruence
        ("(* (sgn a) (sgn a))", "(* (sgn a) (sgn a))"),
    ]

    @pytest.mark.parametrize("lhs,rhs", EQUIVALENT)
    def test_equivalent(self, lhs, rhs):
        assert equivalent(parse(lhs), parse(rhs))

    DIFFERENT = [
        ("(+ a b)", "(- a b)"),
        ("(* a a)", "a"),
        ("(/ a b)", "(/ b a)"),
        ("(Get x 0)", "(Get x 1)"),
        ("(Get x 0)", "(Get y 0)"),
        ("(sqrt a)", "(sqrt b)"),
        ("1", "2"),
    ]

    @pytest.mark.parametrize("lhs,rhs", DIFFERENT)
    def test_not_equivalent(self, lhs, rhs):
        assert not equivalent(parse(lhs), parse(rhs))

    def test_sqrt_is_uninterpreted_beyond_congruence(self):
        # sqrt(a)^2 == a holds for reals >= 0 but is NOT assumed.
        assert not equivalent(parse("(* (sqrt a) (sqrt a))"), parse("a"))

    def test_division_by_zero_polynomial(self):
        with pytest.raises(ZeroDivisionError):
            canonicalize(parse("(/ a (- b b))"))

    def test_overflow_raises(self):
        # (a+b+c+d)^16 has far more monomials than the limit allows.
        term = "(+ (+ a b) (+ c d))"
        for _ in range(4):
            term = f"(* {term} {term})"
        with pytest.raises(CanonOverflow):
            canonicalize(parse(term), CanonLimits(max_terms=50, max_work=10_000))

    def test_atom_key_limit(self):
        # sqrt of a polynomial with many monomials refuses to key.
        big = "(+ a b)"
        for _ in range(4):
            big = f"(* {big} (+ c {big}))"
        with pytest.raises(CanonOverflow):
            canonicalize(parse(f"(sqrt {big})"), CanonLimits(max_atom_key=4))

    def test_float_coefficients_exact(self):
        assert equivalent(parse("(* a 0.25)"), parse("(/ a 4)"))


class TestFlatten:
    def test_list_of_scalars(self):
        lanes = flatten_to_scalars(parse("(List p q)"))
        assert lanes == [parse("p"), parse("q")]

    def test_concat_vec(self):
        lanes = flatten_to_scalars(parse("(Concat (Vec p q) (Vec r s))"))
        assert lanes == [parse(t) for t in "pqrs"]

    def test_vecadd(self):
        lanes = flatten_to_scalars(parse("(VecAdd (Vec p q) (Vec r s))"))
        assert lanes == [parse("(+ p r)"), parse("(+ q s)")]

    def test_vecmac(self):
        lanes = flatten_to_scalars(parse("(VecMAC (Vec p q) (Vec r s) (Vec t u))"))
        assert lanes == [parse("(+ p (* r t))"), parse("(+ q (* s u))")]

    def test_vec_unary(self):
        assert flatten_to_scalars(parse("(VecSqrt (Vec p q))")) == [
            parse("(sqrt p)"),
            parse("(sqrt q)"),
        ]

    def test_lane_mismatch_rejected(self):
        with pytest.raises(ValueError):
            flatten_to_scalars(parse("(VecAdd (Vec p) (Vec r s))"))


def _vadd_spec(n=4):
    def vadd(a, b, o):
        for i in range(n):
            o[i] = a[i] + b[i]

    return lift("vadd", vadd, [("a", n), ("b", n)], [("o", n)])


class TestValidate:
    def test_accepts_correct_vectorization(self):
        spec = _vadd_spec(4)
        optimized = parse(
            "(VecAdd (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get b 0) (Get b 1) (Get b 2) (Get b 3)))"
        )
        result = validate(spec, optimized)
        assert result.ok
        assert result.methods_used.get("canonical", 0) + result.methods_used.get(
            "structural", 0
        ) == 4

    def test_accepts_padding_lanes(self):
        spec = _vadd_spec(2)
        optimized = parse(
            "(VecAdd (Vec (Get a 0) (Get a 1) 0 0) (Vec (Get b 0) (Get b 1) 0 0))"
        )
        assert validate(spec, optimized).ok

    def test_rejects_wrong_program(self):
        spec = _vadd_spec(2)
        wrong = parse(
            "(VecAdd (Vec (Get a 0) (Get a 1) 0 0) (Vec (Get b 1) (Get b 0) 0 0))"
        )
        result = validate(spec, wrong)
        assert not result.ok
        assert result.failing_lanes()

    def test_rejects_too_few_lanes(self):
        spec = _vadd_spec(4)
        result = validate(spec, parse("(Vec (+ (Get a 0) (Get b 0)))"))
        assert not result.ok

    def test_structural_fast_path(self):
        spec = _vadd_spec(2)
        result = validate(spec, spec.term)
        assert result.ok
        assert result.methods_used == {"structural": 2}

    def test_uninterpreted_call_without_semantics_flagged(self):
        def kernel(a, o):
            from repro.frontend import sym_call

            o[0] = sym_call("blackbox", a[0])

        spec = lift("k", kernel, [("a", 1)], [("o", 1)])
        result = validate(spec, spec.term.args[0])
        # Identical term: structural check accepts without needing
        # function semantics.
        assert result.ok

    def test_uninterpreted_call_with_semantics(self):
        from repro.frontend import sym_call

        def kernel(a, o):
            o[0] = sym_call("double", a[0])

        spec = lift("k", kernel, [("a", 1)], [("o", 1)])
        equivalent_term = parse("(List (double (Get a 0)))")
        result = validate(spec, equivalent_term, funcs={"double": lambda x: 2 * x})
        assert result.ok

    def test_uninterpreted_call_mismatch_detected(self):
        from repro.frontend import sym_call

        def kernel(a, o):
            o[0] = sym_call("double", a[0])

        spec = lift("k", kernel, [("a", 1)], [("o", 1)])
        wrong = parse("(List (double (+ (Get a 0) 1)))")
        result = validate(spec, wrong, funcs={"double": lambda x: 2 * x})
        assert not result.ok

    def test_catches_subtle_index_bug(self):
        """The classic miscompile: one shuffled index off by one."""
        spec = _vadd_spec(4)
        subtle = parse(
            "(VecAdd (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 2))"
            " (Vec (Get b 0) (Get b 1) (Get b 2) (Get b 3)))"
        )
        result = validate(spec, subtle)
        assert not result.ok
        assert [l.index for l in result.failing_lanes()] == [3]
