"""The in-process LRU read-through tier of the artifact cache.

Satellite of the gateway PR: at service request rates a disk hit's
read + checksum + unpickle dominates the cache's benefit, so hot keys
must be served from memory, with strict-LRU eviction bounding a
long-lived server's footprint.
"""

import os

from repro.compiler import CompileOptions, compile_spec
from repro.frontend.lift import lift
from repro.service import ArtifactCache, LRUTier

FAST = CompileOptions(
    time_limit=5.0, node_limit=20_000, iter_limit=8, validate=False
)


def _spec(name="lru-k"):
    def body(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    return lift(name, body, [("a", 2), ("b", 2)], [("out", 2)])


# ------------------------------------------------------------- LRUTier unit


def test_lru_counts_hits_misses_stores():
    lru = LRUTier(capacity=4)
    assert lru.get("a") is None
    lru.put("a", 1)
    assert lru.get("a") == 1
    assert (lru.stats.hits, lru.stats.misses, lru.stats.stores) == (1, 1, 1)


def test_lru_evicts_least_recently_used():
    lru = LRUTier(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refresh "a": "b" is now the LRU entry
    lru.put("c", 3)
    assert lru.get("b") is None  # evicted
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert lru.stats.evictions == 1
    assert len(lru) == 2


def test_lru_capacity_is_a_hard_bound():
    lru = LRUTier(capacity=3)
    for i in range(50):
        lru.put(f"k{i}", i)
    assert len(lru) == 3
    assert lru.stats.evictions == 47


# --------------------------------------------------------- ArtifactCache tie


def test_cache_put_populates_memory_tier(tmp_path):
    cache = ArtifactCache(str(tmp_path), lru_capacity=8)
    spec = _spec()
    result = compile_spec(spec, FAST)
    key = cache.key_for(spec, FAST)
    assert cache.put(key, result)
    assert cache.lru.stats.stores == 1
    # Remove the disk entry: a memory hit must not need it.
    os.unlink(cache._path(key))
    assert cache.get(key) is not None
    assert cache.lru.stats.hits == 1


def test_disk_hit_populates_memory_tier(tmp_path):
    spec = _spec()
    result = compile_spec(spec, FAST)
    writer = ArtifactCache(str(tmp_path), lru_capacity=8)
    key = writer.key_for(spec, FAST)
    assert writer.put(key, result)

    # Fresh process-equivalent: cold memory tier, warm disk.
    reader = ArtifactCache(str(tmp_path), lru_capacity=8)
    assert reader.get(key) is not None  # read-through: disk -> memory
    assert reader.lru.stats.misses == 1
    assert reader.get(key) is not None
    assert reader.lru.stats.hits == 1
    # Both counted as cache hits at the ArtifactCache level.
    assert reader.stats.hits == 2


def test_lru_disabled_by_default(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    assert cache.lru is None


def test_cache_clear_empties_memory_tier(tmp_path):
    cache = ArtifactCache(str(tmp_path), lru_capacity=8)
    spec = _spec()
    key = cache.key_for(spec, FAST)
    cache.put(key, compile_spec(spec, FAST))
    cache.clear()
    assert len(cache.lru) == 0
    assert cache.get(key) is None
