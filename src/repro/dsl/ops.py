"""Operator catalogue for the Diospyros vector DSL.

This module is the single source of truth for the operator vocabulary
of Figure 3: each operator's arity, its *kind* (scalar computation,
vector computation, data movement, leaf, or the top-level ``List``),
and -- where one exists -- the scalar operator a vector operator
corresponds to.  The rewrite-rule generators in :mod:`repro.rules` and
the lowering phase in :mod:`repro.backend` both consult this table so
that adding a new target-specific operation (the paper's ``VecRecip``
example from Section 6) is a one-line change here plus one rewrite
rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "OpKind",
    "OpInfo",
    "OPS",
    "SCALAR_BINOPS",
    "SCALAR_UNOPS",
    "VECTOR_OF_SCALAR",
    "SCALAR_OF_VECTOR",
    "is_scalar_op",
    "is_vector_op",
    "scalar_eval",
    "register_op",
]


class OpKind:
    """Enumeration of operator categories (plain strings for easy
    debugging and serialization)."""

    LEAF = "leaf"
    SCALAR = "scalar"
    VECTOR = "vector"
    MOVEMENT = "movement"
    TOP = "top"


@dataclass(frozen=True)
class OpInfo:
    """Static description of one DSL operator.

    ``arity`` is ``None`` for variadic operators (``Vec``, ``List``,
    ``Call``).  ``scalar_fn`` is the concrete Python evaluation function
    for scalar operators, used by the interpreter and the validator's
    random-testing mode.
    """

    name: str
    kind: str
    arity: Optional[int]
    scalar_fn: Optional[Callable[..., float]] = None
    commutative: bool = False
    associative: bool = False


def _sgn(x: float) -> float:
    """Sign function with sgn(0) = 0, matching ``numpy.sign``."""
    if x > 0:
        return 1.0
    if x < 0:
        return -1.0
    return 0.0


def _safe_sqrt(x: float) -> float:
    """Square root; the DSL is specified over the reals, so negative
    arguments are a spec error -- surface them loudly."""
    if x < 0:
        raise ValueError(f"sqrt of negative value {x}")
    return math.sqrt(x)


OPS: Dict[str, OpInfo] = {}


def register_op(info: OpInfo) -> OpInfo:
    """Add an operator to the catalogue (also how a user registers a
    target-specific extension such as a vector reciprocal)."""
    OPS[info.name] = info
    return info


for _info in [
    OpInfo("Num", OpKind.LEAF, 0),
    OpInfo("Symbol", OpKind.LEAF, 0),
    OpInfo("Get", OpKind.MOVEMENT, 2),
    OpInfo("+", OpKind.SCALAR, 2, lambda a, b: a + b, commutative=True, associative=True),
    OpInfo("-", OpKind.SCALAR, 2, lambda a, b: a - b),
    OpInfo("*", OpKind.SCALAR, 2, lambda a, b: a * b, commutative=True, associative=True),
    OpInfo("/", OpKind.SCALAR, 2, lambda a, b: a / b),
    OpInfo("neg", OpKind.SCALAR, 1, lambda a: -a),
    OpInfo("sqrt", OpKind.SCALAR, 1, _safe_sqrt),
    OpInfo("sgn", OpKind.SCALAR, 1, _sgn),
    OpInfo("Call", OpKind.SCALAR, None),
    OpInfo("Vec", OpKind.MOVEMENT, None),
    OpInfo("Concat", OpKind.MOVEMENT, 2),
    OpInfo("List", OpKind.TOP, None),
    OpInfo("VecAdd", OpKind.VECTOR, 2),
    OpInfo("VecMinus", OpKind.VECTOR, 2),
    OpInfo("VecMul", OpKind.VECTOR, 2),
    OpInfo("VecDiv", OpKind.VECTOR, 2),
    OpInfo("VecMAC", OpKind.VECTOR, 3),
    OpInfo("VecNeg", OpKind.VECTOR, 1),
    OpInfo("VecSqrt", OpKind.VECTOR, 1),
    OpInfo("VecSgn", OpKind.VECTOR, 1),
]:
    register_op(_info)


#: Binary scalar operators and the vector operator each lifts to.
#: This drives the generic binary-vectorization rule (Section 3.2).
SCALAR_BINOPS: Dict[str, str] = {
    "+": "VecAdd",
    "-": "VecMinus",
    "*": "VecMul",
    "/": "VecDiv",
}

#: Unary scalar operators and their vector equivalents.
SCALAR_UNOPS: Dict[str, str] = {
    "neg": "VecNeg",
    "sqrt": "VecSqrt",
    "sgn": "VecSgn",
}

#: Scalar -> vector operator map (union of the two tables above).
VECTOR_OF_SCALAR: Dict[str, str] = {**SCALAR_BINOPS, **SCALAR_UNOPS}

#: Vector -> scalar operator map (inverse of the above).
SCALAR_OF_VECTOR: Dict[str, str] = {v: k for k, v in VECTOR_OF_SCALAR.items()}


def is_scalar_op(op: str) -> bool:
    info = OPS.get(op)
    return info is not None and info.kind == OpKind.SCALAR


def is_vector_op(op: str) -> bool:
    info = OPS.get(op)
    return info is not None and info.kind == OpKind.VECTOR


def scalar_eval(op: str, *args: float) -> float:
    """Evaluate a scalar operator on concrete floats.

    Raises ``KeyError`` for unknown operators and ``TypeError`` when the
    operator has no concrete semantics (e.g. an uninterpreted ``Call``
    with no registered implementation).
    """
    info = OPS[op]
    if info.scalar_fn is None:
        raise TypeError(f"operator {op!r} has no concrete scalar semantics")
    return info.scalar_fn(*args)


def identity_element(op: str) -> Optional[float]:
    """The identity element of a binary scalar operator, when one
    exists (used for zero-padding rules: padding lanes must not change
    the result of the surviving lanes)."""
    return {"+": 0.0, "-": 0.0, "*": 1.0, "/": 1.0}.get(op)
