"""The machine-independent vector IR (paper Section 4).

"To capture the essence of vector computation with data movement, the
Diospyros backend defines a machine-independent vector intermediate
representation."  Ours is a small register machine:

* unlimited scalar (``s0, s1, ...``) and vector (``v0, v1, ...``)
  virtual registers;
* memory is a set of named arrays (kernel inputs and outputs);
* vector registers hold ``width`` lanes; ``vec-shuffle`` (one source
  register) and ``vec-select`` (two source registers) take an arbitrary
  immediate index vector, exactly the unrestricted-data-movement
  contract the paper's IR exposes;
* control flow (labels and conditional branches) exists so that the
  *baseline* loop-nest kernels are genuinely loops paying genuine
  branch and induction-variable costs -- Diospyros-generated kernels
  are straight-line.

The cycle-level simulator in :mod:`repro.machine.simulator` executes
this IR directly; :mod:`repro.backend.codegen` pretty-prints it as
Tensilica-style C++ intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Instr",
    "SConst",
    "SMove",
    "SBin",
    "SUn",
    "SLoad",
    "SLoadIdx",
    "SStore",
    "SStoreIdx",
    "VConst",
    "VLoad",
    "VLoadIdx",
    "VStore",
    "VStoreIdx",
    "VShuffle",
    "VSelect",
    "VBin",
    "VUn",
    "VMac",
    "VInsert",
    "VSplat",
    "Label",
    "Jump",
    "Branch",
    "Program",
]

Reg = str

#: Binary scalar/vector arithmetic operators the IR supports.
BIN_OPS = ("+", "-", "*", "/", "min", "max")
UN_OPS = ("neg", "sqrt", "sgn")
CMP_OPS = ("lt", "le", "eq", "ne", "ge", "gt")


class Instr:
    """Base class for IR instructions.

    ``opcode`` identifies the instruction for the machine cost table;
    ``defs()`` / ``uses()`` support LVN and dead-code elimination.
    """

    opcode: str = "instr"

    def defs(self) -> Tuple[Reg, ...]:
        return ()

    def uses(self) -> Tuple[Reg, ...]:
        return ()

    def is_pure(self) -> bool:
        """Pure instructions (no store, no control flow) are subject to
        value numbering and dead-code elimination."""
        return False


# ---------------------------------------------------------------------------
# Scalar instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SConst(Instr):
    dst: Reg
    value: float
    opcode = "sconst"

    def defs(self):
        return (self.dst,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class SMove(Instr):
    dst: Reg
    src: Reg
    opcode = "smove"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.src,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class SBin(Instr):
    op: str
    dst: Reg
    a: Reg
    b: Reg

    def __post_init__(self):
        if self.op not in BIN_OPS:
            raise ValueError(f"unknown scalar binary op {self.op!r}")

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return f"sbin.{self.op}"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.a, self.b)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class SUn(Instr):
    op: str
    dst: Reg
    a: Reg

    def __post_init__(self):
        if self.op not in UN_OPS:
            raise ValueError(f"unknown scalar unary op {self.op!r}")

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return f"sun.{self.op}"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.a,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class SLoad(Instr):
    """Scalar load from ``array[offset]`` (immediate address)."""

    dst: Reg
    array: str
    offset: int
    opcode = "sload"

    def defs(self):
        return (self.dst,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class SLoadIdx(Instr):
    """Scalar load from ``array[int(idx) + offset]`` (register address,
    used by loop-based baseline kernels)."""

    dst: Reg
    array: str
    idx: Reg
    offset: int = 0
    opcode = "sload.idx"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.idx,)

    # Register-addressed loads are pure per se, but value-numbering
    # them across loop iterations would be wrong; LVN only runs on
    # straight-line programs, which never contain them.
    def is_pure(self):
        return True


@dataclass(frozen=True)
class SStore(Instr):
    array: str
    offset: int
    src: Reg
    opcode = "sstore"

    def uses(self):
        return (self.src,)


@dataclass(frozen=True)
class SStoreIdx(Instr):
    array: str
    idx: Reg
    src: Reg
    offset: int = 0
    opcode = "sstore.idx"

    def uses(self):
        return (self.idx, self.src)


# ---------------------------------------------------------------------------
# Vector instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VConst(Instr):
    dst: Reg
    values: Tuple[float, ...]
    opcode = "vconst"

    def defs(self):
        return (self.dst,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VLoad(Instr):
    """Contiguous vector load of ``width`` lanes from
    ``array[offset ...]``."""

    dst: Reg
    array: str
    offset: int
    opcode = "vload"

    def defs(self):
        return (self.dst,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VLoadIdx(Instr):
    dst: Reg
    array: str
    idx: Reg
    offset: int = 0
    opcode = "vload.idx"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.idx,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VStore(Instr):
    """Store the first ``count`` lanes of ``src`` to
    ``array[offset ...]`` (partial stores model the predicated tail
    stores real DSPs provide)."""

    array: str
    offset: int
    src: Reg
    count: int
    opcode = "vstore"

    def uses(self):
        return (self.src,)


@dataclass(frozen=True)
class VStoreIdx(Instr):
    array: str
    idx: Reg
    src: Reg
    count: int
    offset: int = 0
    opcode = "vstore.idx"

    def uses(self):
        return (self.idx, self.src)


@dataclass(frozen=True)
class VShuffle(Instr):
    """``dst[i] = src[indices[i]]`` -- single-register permutation
    (lowered to PDX_SHFL_MX32 on the Fusion G3, paper Section 5.1)."""

    dst: Reg
    src: Reg
    indices: Tuple[int, ...]
    opcode = "vshuffle"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.src,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VSelect(Instr):
    """``dst[i] = concat(a, b)[indices[i]]`` -- two-register select
    (PDX_SEL_MX32; arbitrary shuffles use nested selects)."""

    dst: Reg
    a: Reg
    b: Reg
    indices: Tuple[int, ...]
    opcode = "vselect"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.a, self.b)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VBin(Instr):
    op: str
    dst: Reg
    a: Reg
    b: Reg

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown vector binary op {self.op!r}")

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return f"vbin.{self.op}"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.a, self.b)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VUn(Instr):
    op: str
    dst: Reg
    a: Reg

    def __post_init__(self):
        if self.op not in UN_OPS:
            raise ValueError(f"unknown vector unary op {self.op!r}")

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return f"vun.{self.op}"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.a,)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VMac(Instr):
    """``dst = acc + a * b`` lanewise (PDX_MAC_MX32)."""

    dst: Reg
    acc: Reg
    a: Reg
    b: Reg
    opcode = "vmac"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.acc, self.a, self.b)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VInsert(Instr):
    """Insert a scalar register into one lane of a vector register."""

    dst: Reg
    src: Reg
    lane: int
    scalar: Reg
    opcode = "vinsert"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.src, self.scalar)

    def is_pure(self):
        return True


@dataclass(frozen=True)
class VSplat(Instr):
    """Broadcast a scalar register to every lane."""

    dst: Reg
    scalar: Reg
    opcode = "vsplat"

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.scalar,)

    def is_pure(self):
        return True


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Label(Instr):
    name: str
    opcode = "label"


@dataclass(frozen=True)
class Jump(Instr):
    target: str
    opcode = "jump"


@dataclass(frozen=True)
class Branch(Instr):
    """Conditional branch: jump to ``target`` when ``a <cond> b``."""

    cond: str
    a: Reg
    b: Reg
    target: str
    opcode = "branch"

    def __post_init__(self):
        if self.cond not in CMP_OPS:
            raise ValueError(f"unknown branch condition {self.cond!r}")

    def uses(self):
        return (self.a, self.b)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """A complete IR kernel: named input/output arrays plus code.

    ``outputs`` declares the flat length of each output buffer; kernels
    with several logical outputs (e.g. QR's Q and R) use one combined
    buffer, mirroring how Diospyros's lifted ``List`` concatenates all
    outputs.
    """

    name: str
    inputs: Dict[str, int]
    outputs: Dict[str, int]
    instructions: List[Instr] = field(default_factory=list)
    vector_width: int = 4

    def emit(self, instr: Instr) -> Instr:
        self.instructions.append(instr)
        return instr

    def extend(self, instrs: Iterable[Instr]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def is_straight_line(self) -> bool:
        return not any(
            isinstance(i, (Label, Jump, Branch)) for i in self.instructions
        )

    def validate_labels(self) -> None:
        """Check that every jump/branch target exists exactly once."""
        labels = [i.name for i in self.instructions if isinstance(i, Label)]
        if len(labels) != len(set(labels)):
            dupes = sorted({l for l in labels if labels.count(l) > 1})
            raise ValueError(f"duplicate labels: {dupes}")
        defined = set(labels)
        for instr in self.instructions:
            target = getattr(instr, "target", None)
            if target is not None and target not in defined:
                raise ValueError(f"undefined label {target!r}")

    def opcode_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for instr in self.instructions:
            histogram[instr.opcode] = histogram.get(instr.opcode, 0) + 1
        return histogram

    def canonical_text(self) -> str:
        """A stable textual rendering for fingerprinting.

        One line per instruction (dataclass ``repr``, which is stable
        across runs and machines -- fields only, floats via ``repr``),
        preceded by the vector width and the sorted array declarations.
        The kernel *name* is deliberately excluded so two kernels with
        identical code share a fingerprint.
        """
        lines = [f"width {self.vector_width}"]
        lines.extend(f"in {a} {self.inputs[a]}" for a in sorted(self.inputs))
        lines.extend(f"out {a} {self.outputs[a]}" for a in sorted(self.outputs))
        lines.extend(repr(instr) for instr in self.instructions)
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Content checksum of the kernel (first 16 hex digits of the
        SHA-256 of :meth:`canonical_text`).  The golden regression
        corpus keys on this to detect backend drift."""
        import hashlib

        return hashlib.sha256(self.canonical_text().encode("utf-8")).hexdigest()[:16]


class RegAllocator:
    """Mints fresh virtual register names."""

    def __init__(self) -> None:
        self._counts = {"s": 0, "v": 0}

    def scalar(self) -> Reg:
        self._counts["s"] += 1
        return f"s{self._counts['s'] - 1}"

    def vector(self) -> Reg:
        self._counts["v"] += 1
        return f"v{self._counts['v'] - 1}"
