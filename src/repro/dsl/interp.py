"""Concrete interpreter for the vector DSL.

The interpreter gives the DSL an executable semantics, used in three
places:

* unit tests of the rewrite rules (a rewrite must preserve the value of
  every term it fires on);
* the translation validator's randomized-testing mode
  (:mod:`repro.validation.validate`);
* differential testing of the backend: the cycle simulator's output for
  a lowered kernel must equal the interpreter's output for the
  extracted DSL term.

Scalars evaluate to ``float``.  Vector expressions evaluate to a flat
``list`` of floats, one per lane.  The top-level ``List`` evaluates to
the flattened output of the kernel (vector elements contribute all of
their lanes in order, matching Concat-of-Vec chunking of an output
array).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Union

from .ast import Term
from .ops import scalar_eval

__all__ = ["Env", "evaluate", "evaluate_output", "EvalError"]

#: Environment: array symbols map to flat sequences of numbers, scalar
#: symbols map to a single number.
Env = Mapping[str, Union[float, Sequence[float]]]

#: Optional concrete implementations for user-defined (Call) functions.
FuncTable = Mapping[str, Callable[..., float]]


class EvalError(RuntimeError):
    """Raised when a term cannot be evaluated under the given
    environment (missing symbol, out-of-range Get, uninterpreted call
    with no implementation, ...)."""


def _lookup_array(env: Env, name: str) -> Sequence[float]:
    try:
        value = env[name]
    except KeyError as exc:
        raise EvalError(f"unbound array symbol {name!r}") from exc
    if isinstance(value, (int, float)):
        raise EvalError(f"symbol {name!r} is a scalar, not an array")
    return value


def _eval_scalar(
    term: Term, env: Env, funcs: FuncTable, cache: Dict[Term, float] = None
) -> float:
    """Evaluate a scalar term with memoization.

    Lifted specs are DAGs with heavy sharing (a QR decomposition's
    output entries reuse each other's subexpressions); memoizing on the
    hash-consed terms keeps evaluation linear in the DAG size instead
    of exponential in its depth.
    """
    if cache is None:
        cache = {}
    hit = cache.get(term)
    if hit is not None:
        return hit
    result = _eval_scalar_uncached(term, env, funcs, cache)
    cache[term] = result
    return result


def _eval_scalar_uncached(
    term: Term, env: Env, funcs: FuncTable, cache: Dict[Term, float]
) -> float:
    op = term.op
    if op == "Num":
        return float(term.value)  # type: ignore[arg-type]
    if op == "Symbol":
        name = str(term.value)
        try:
            value = env[name]
        except KeyError as exc:
            raise EvalError(f"unbound scalar symbol {name!r}") from exc
        if not isinstance(value, (int, float)):
            raise EvalError(f"symbol {name!r} is an array, used as a scalar")
        return float(value)
    if op == "Get":
        array_term, index_term = term.args
        if array_term.op != "Symbol" or index_term.op != "Num":
            raise EvalError(f"non-canonical Get: {term}")
        array = _lookup_array(env, str(array_term.value))
        index = int(index_term.value)  # type: ignore[arg-type]
        if not 0 <= index < len(array):
            raise EvalError(
                f"Get index {index} out of range for {array_term.value!r}"
                f" (length {len(array)})"
            )
        return float(array[index])
    if op == "Call":
        name = str(term.value)
        fn = funcs.get(name)
        if fn is None:
            raise EvalError(f"no concrete implementation for function {name!r}")
        return float(fn(*(_eval_scalar(a, env, funcs, cache) for a in term.args)))
    args = [_eval_scalar(a, env, funcs, cache) for a in term.args]
    try:
        return float(scalar_eval(op, *args))
    except (KeyError, TypeError) as exc:
        raise EvalError(f"cannot evaluate operator {op!r}") from exc


def _eval_vector(
    term: Term, env: Env, funcs: FuncTable, cache: Dict[Term, float] = None
) -> List[float]:
    if cache is None:
        cache = {}
    op = term.op
    if op == "Vec":
        return [_eval_scalar(a, env, funcs, cache) for a in term.args]
    if op == "Concat":
        left = _eval_vector(term.args[0], env, funcs, cache)
        right = _eval_vector(term.args[1], env, funcs, cache)
        return left + right
    if op in ("VecAdd", "VecMinus", "VecMul", "VecDiv"):
        a = _eval_vector(term.args[0], env, funcs, cache)
        b = _eval_vector(term.args[1], env, funcs, cache)
        if len(a) != len(b):
            raise EvalError(f"lane-count mismatch in {op}: {len(a)} vs {len(b)}")
        scalar_op = {"VecAdd": "+", "VecMinus": "-", "VecMul": "*", "VecDiv": "/"}[op]
        return [scalar_eval(scalar_op, x, y) for x, y in zip(a, b)]
    if op == "VecMAC":
        acc = _eval_vector(term.args[0], env, funcs, cache)
        a = _eval_vector(term.args[1], env, funcs, cache)
        b = _eval_vector(term.args[2], env, funcs, cache)
        if not len(acc) == len(a) == len(b):
            raise EvalError(f"lane-count mismatch in VecMAC")
        return [c + x * y for c, x, y in zip(acc, a, b)]
    if op in ("VecNeg", "VecSqrt", "VecSgn"):
        a = _eval_vector(term.args[0], env, funcs, cache)
        scalar_op = {"VecNeg": "neg", "VecSqrt": "sqrt", "VecSgn": "sgn"}[op]
        return [scalar_eval(scalar_op, x) for x in a]
    raise EvalError(f"operator {op!r} is not a vector expression")


def evaluate(
    term: Term, env: Env, funcs: FuncTable = None
) -> Union[float, List[float]]:
    """Evaluate any DSL term under ``env``.

    Scalar terms return a float; vector terms return a list of lane
    values; a top-level ``List`` returns the flattened kernel output.
    """
    funcs = funcs or {}
    cache: Dict[Term, float] = {}
    if term.op == "List":
        out: List[float] = []
        for item in term.args:
            if item.op in _VECTOR_OPS:
                out.extend(_eval_vector(item, env, funcs, cache))
            else:
                out.append(_eval_scalar(item, env, funcs, cache))
        return out
    if term.op in _VECTOR_OPS:
        return _eval_vector(term, env, funcs, cache)
    return _eval_scalar(term, env, funcs, cache)


_VECTOR_OPS = (
    "Vec",
    "Concat",
    "VecAdd",
    "VecMinus",
    "VecMul",
    "VecDiv",
    "VecMAC",
    "VecNeg",
    "VecSqrt",
    "VecSgn",
)


def evaluate_output(term: Term, env: Env, funcs: FuncTable = None) -> List[float]:
    """Evaluate a term and always return a flat list of output values.

    This is the form used to compare a lifted spec against an optimized
    program: a spec ``(List s0 s1 ...)`` and its vectorized equivalent
    ``(Concat (VecAdd ...) ...)`` both flatten to the same list.
    """
    value = evaluate(term, env, funcs)
    if isinstance(value, list):
        return value
    return [value]
