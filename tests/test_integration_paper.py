"""Integration tests tied to specific claims and examples in the
paper text."""

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.dsl import parse
from repro.egraph import EGraph, Extractor, Runner
from repro.costs import DiospyrosCostModel
from repro.kernels import make_conv2d, make_matmul, make_qprod
from repro.machine import simulate
from repro.rules import build_ruleset
from tests.conftest import run_and_compare


class TestSection2ConvExample:
    """The motivating 3x5-input, 3x3-filter convolution."""

    @pytest.fixture(scope="class")
    def kernel(self):
        return make_conv2d(3, 5, 3, 3)

    def test_corner_output_has_single_tap(self, kernel):
        """Output (0,0) of the Section 2 loop nest touches exactly one
        filter tap (every other tap is guarded out by the boundary
        if)."""
        spec = kernel.spec()
        assert spec.term.args[0] == parse("(* (Get i 0) (Get f 0))")

    def test_paper_listed_spec_expression(self, kernel):
        """Section 2 lists the spec i00*f11 + i01*f10 + i10*f01 +
        i11*f00 -- that is output (1,1), flat index 8 of the 5x7
        output (filter flat indices 4, 3, 1, 0)."""
        spec = kernel.spec()
        expected = parse(
            "(+ (+ (+ (* (Get i 0) (Get f 4)) (* (Get i 1) (Get f 3)))"
            " (* (Get i 5) (Get f 1))) (* (Get i 6) (Get f 0)))"
        )
        assert spec.term.args[8] == expected

    def test_compiles_and_beats_naive_fixed(self, kernel):
        from repro.baselines import naive_fixed

        result = compile_spec(
            kernel.spec(),
            CompileOptions(time_limit=10, node_limit=100_000, validate=False),
        )
        dio = run_and_compare(kernel, result.program)
        fixed = run_and_compare(kernel, naive_fixed(kernel))
        assert dio.cycles < fixed.cycles

    def test_mac_with_single_array_operands_found(self, kernel):
        """Section 2 shows the discovered VecMAC whose operand vectors
        each gather from a single input array.  Check the extracted
        program contains at least one such MAC."""
        result = compile_spec(
            kernel.spec(),
            CompileOptions(time_limit=10, node_limit=100_000, validate=False),
        )
        assert "VecMAC" in result.optimized.to_sexpr()


class TestSection32VectorAddExample:
    def test_exact_rewrite_from_paper(self):
        """Section 3.2's n=4, width-2 vector add becomes exactly the
        Concat-of-VecAdds shown in the paper."""
        spec = parse(
            "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1))"
            " (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
        )
        eg = EGraph()
        root = eg.add_term(spec)
        Runner(build_ruleset(width=2)).run(eg)
        from repro.costs import CostConfig

        term = Extractor(
            eg, DiospyrosCostModel(CostConfig(vector_width=2))
        ).extract(root).term
        assert term == parse(
            "(Concat (VecAdd (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b 1)))"
            " (VecAdd (Vec (Get a 2) (Get a 3)) (Vec (Get b 2) (Get b 3))))"
        )


class TestFigure4MacFusion:
    def test_vecadd_vecmul_and_vecmac_share_class(self):
        """Figure 4: after the rewrite, the VecAdd and VecMAC terms are
        in the same equivalence class."""
        eg = EGraph()
        eg.add_term(parse("(VecAdd (Vec p q) (VecMul (Vec r s) (Vec t u)))"))
        Runner(build_ruleset(width=2)).run(eg)
        assert eg.equiv(
            parse("(VecAdd (Vec p q) (VecMul (Vec r s) (Vec t u)))"),
            parse("(VecMAC (Vec p q) (Vec r s) (Vec t u))"),
        )


class TestQProdShuffle:
    def test_quaternion_shuffle_vec_from_section4(self):
        """Section 4's example Vec -- (Vec (Get a 1) (Get a 2) (Get a 0)
        (Get a 3)) -- lowers to a single-register shuffle."""
        from repro.backend.lower import lower_term

        program = lower_term(
            parse("(Vec (Get a 1) (Get a 2) (Get a 0) (Get a 3))"), {"a": 4}, 4
        )
        hist = program.opcode_histogram()
        assert hist == {"vload": 1, "vshuffle": 1, "vstore": 1}

    def test_qprod_compiles_correctly(self):
        kernel = make_qprod()
        result = compile_spec(
            kernel.spec(),
            CompileOptions(time_limit=10, node_limit=100_000, validate=False),
        )
        run_and_compare(kernel, result.program)


class TestExpertComparison:
    def test_same_vector_op_mix_as_expert(self):
        """Section 5.4: Diospyros's 2x3*3x3 kernel performs the same
        number and type of vector operations as the expert's (two
        multiplies, four MACs)."""
        kernel = make_matmul(2, 3, 3)
        result = compile_spec(
            kernel.spec(),
            CompileOptions(time_limit=10, node_limit=100_000, validate=False),
        )
        hist = result.program.opcode_histogram()
        assert hist.get("vbin.*") == 2
        assert hist.get("vmac") == 4
