"""Deterministic seed derivation for every randomized component.

Randomized subsystems (the fuzz oracle, the conformance mutation
engine, validation's differential lanes, the supervisor's retry
jitter) must replay **byte-identically across machines and interpreter
invocations**.  ``random.Random(obj)`` is only guaranteed that for
``int`` seeds: seeding with other hashable objects falls back to
``hash(obj)``, which ``PYTHONHASHSEED`` randomizes per process, and
even string seeding couples the stream to CPython's seeding-version
details.

:func:`stable_seed` therefore derives a 63-bit integer from its
arguments via SHA-256 over an explicit byte encoding -- no ``hash()``
anywhere -- and :func:`stable_rng` wraps it into a ``random.Random``.
Derivations are *domain-separated*: ``stable_seed(1, "gen")`` and
``stable_seed(1, "check")`` yield independent streams, so one consumer
drawing more numbers can never perturb another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["stable_seed", "stable_rng"]

SeedPart = Union[int, float, str, bytes]


def _encode(part: SeedPart) -> bytes:
    if isinstance(part, bytes):
        return b"b:" + part
    if isinstance(part, bool):  # before int: bool is an int subclass
        return b"o:" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i:" + str(part).encode("ascii")
    if isinstance(part, float):
        # repr round-trips doubles exactly and is platform-stable.
        return b"f:" + repr(part).encode("ascii")
    if isinstance(part, str):
        return b"s:" + part.encode("utf-8")
    raise TypeError(
        f"stable_seed parts must be int/float/str/bytes, got {type(part).__name__}"
    )


def stable_seed(*parts: SeedPart) -> int:
    """A deterministic 63-bit seed from ``parts``, independent of
    ``PYTHONHASHSEED`` and interpreter hash randomization."""
    digest = hashlib.sha256(b"\x1f".join(_encode(p) for p in parts)).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def stable_rng(*parts: SeedPart) -> random.Random:
    """A ``random.Random`` seeded with :func:`stable_seed`."""
    return random.Random(stable_seed(*parts))
