"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_kernels(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matmul-2x3-3x3" in out
        assert "qrdecomp-4x4" in out
        assert out.count("2DConv") == 11


class TestCompile:
    def test_compile_small_kernel(self, capsys):
        code = main(["compile", "matmul-2x2-2x2", "--budget", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "translation validation: PASSED" in out
        assert "IR opcode histogram" in out

    def test_compile_show_c(self, capsys):
        main(["compile", "matmul-2x2-2x2", "--budget", "3", "--no-validate", "--show-c"])
        out = capsys.readouterr().out
        assert "PDX_" in out

    def test_compile_emit_c(self, tmp_path, capsys):
        target = tmp_path / "kernel.c"
        main([
            "compile", "matmul-2x2-2x2", "--budget", "3", "--no-validate",
            "--emit-c", str(target),
        ])
        assert target.exists()
        assert "PDX_" in target.read_text()

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            main(["compile", "nonsense"])


class TestRun:
    @pytest.mark.parametrize("impl", ["naive", "naive-fixed", "nature", "eigen"])
    def test_run_baselines(self, capsys, impl):
        assert main(["run", "matmul-2x2-2x2", "--impl", impl]) == 0
        assert "correct=True" in capsys.readouterr().out

    def test_run_diospyros(self, capsys):
        assert main(["run", "matmul-2x2-2x2", "--budget", "3"]) == 0
        assert "correct=True" in capsys.readouterr().out

    def test_unavailable_impl(self, capsys):
        assert main(["run", "qprod-4-3-4-3", "--impl", "nature"]) == 2


class TestChaos:
    def test_chaos_smoke_single_cell(self, tmp_path, capsys):
        """One fast deterministic cell end to end through the CLI,
        including the JSON report artifact."""
        report = tmp_path / "chaos.json"
        code = main([
            "chaos", "--smoke", "--filter", "cache.read:corrupt",
            "--kernels", "dot2", "--seed", "0", "--report", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "zero invariant violations" in out
        import json

        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["fired_actions"] == ["corrupt"]

    def test_chaos_bad_filter(self, capsys):
        assert main(["chaos", "--filter", "nosuch"]) == 2
        assert "no matrix cells match" in capsys.readouterr().err
