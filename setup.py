"""Setup shim for environments without the `wheel` package (offline
legacy `setup.py develop` installs). Metadata lives in pyproject.toml."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
