"""Tests for the backoff scheduler, cooperative deadlines, and the
Runner's stop reasons (including the fault-tolerance stop reason)."""

import time
import tracemalloc

import pytest

from repro.dsl import parse
from repro.egraph import (
    BackoffScheduler,
    CustomRewrite,
    Deadline,
    EGraph,
    ENode,
    Match,
    Runner,
    StopReason,
    rewrite,
)


def _graph_with_add0_sites(n):
    """An e-graph holding ``n`` distinct ``(+ xi 0)`` terms, i.e. ``n``
    match sites for the ``add-0`` rule."""
    eg = EGraph()
    for i in range(n):
        eg.add_term(parse(f"(+ x{i} 0)"))
    return eg


def _counter_rule(sleep=0.0):
    """A rule that genuinely grows the graph every iteration (unions the
    largest literal's class with a fresh literal one larger)."""

    def searcher(eg):
        if sleep:
            time.sleep(sleep)
        best = None
        for cid in eg.classes_with_op("Num"):
            for node in eg.nodes_of(cid):
                if node.op == "Num" and (best is None or node.value > best[1]):
                    best = (cid, node.value)
        if best is not None:
            cid, value = best
            yield Match(cid, lambda e, v=value: e.add(ENode("Num", (), v + 1)))

    return CustomRewrite("counter", searcher)


class TestDeadline:
    def test_none_never_expires(self):
        d = Deadline.after(None)
        assert not d.expired()
        assert d.remaining() == float("inf")

    def test_zero_expires_immediately(self):
        assert Deadline.after(0).expired()

    def test_future_deadline(self):
        d = Deadline.after(60.0)
        assert not d.expired()
        assert 0 < d.remaining() <= 60.0


class TestBackoffScheduler:
    def test_overflow_bans_and_escalates(self):
        eg = _graph_with_add0_sites(5)
        rule = rewrite("add-0", "(+ ?a 0)", "?a")
        sched = BackoffScheduler(match_limit=3, ban_length=2)

        assert sched.search_rewrite(0, eg, rule) == []  # 5 > 3: banned
        stats = sched.stats["add-0"]
        assert stats.times_banned == 1
        assert stats.banned_until == 0 + 1 + 2
        assert stats.applied == 0

        assert sched.search_rewrite(1, eg, rule) == []  # banned: skipped
        assert sched.search_rewrite(2, eg, rule) == []
        assert stats.skipped == 2

        # Unbanned at iteration 3, and the threshold doubled to 6 >= 5.
        matches = sched.search_rewrite(3, eg, rule)
        assert len(matches) == 5
        assert stats.applied == 5
        assert stats.times_banned == 1

    def test_match_limit_none_never_bans(self):
        eg = _graph_with_add0_sites(50)
        rule = rewrite("add-0", "(+ ?a 0)", "?a")
        sched = BackoffScheduler(match_limit=None)
        assert len(sched.search_rewrite(0, eg, rule)) == 50
        assert sched.stats["add-0"].times_banned == 0

    def test_can_stop_fast_forwards_bans(self):
        eg = _graph_with_add0_sites(5)
        rule = rewrite("add-0", "(+ ?a 0)", "?a")
        sched = BackoffScheduler(match_limit=3, ban_length=10)
        sched.search_rewrite(0, eg, rule)
        stats = sched.stats["add-0"]
        assert stats.banned_at(1)

        # A run with a banned rule has not saturated; the ban is
        # fast-forwarded so the rule fires on the very next iteration.
        assert not sched.can_stop(0)
        assert not stats.banned_at(1)
        assert sched.can_stop(0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffScheduler(match_limit=0)
        with pytest.raises(ValueError):
            BackoffScheduler(ban_length=0)


class TestRunnerBackoff:
    def test_ban_unban_cycle_in_real_run(self):
        """The explosive rule is banned, skipped for the ban window,
        then fires once its (doubled) budget accommodates it."""
        eg = _graph_with_add0_sites(10)
        report = Runner(
            [rewrite("add-0", "(+ ?a 0)", "?a"), _counter_rule()],
            match_limit=6,
            iter_limit=9,
            node_limit=100_000,
        ).run(eg)

        stats = report.rule_stats["add-0"]
        assert stats.times_banned == 1  # 10 > 6 on iteration 0
        assert stats.skipped == 5  # default ban_length
        assert stats.applied >= 10  # fired after the ban expired
        assert report.banned_rules() == ["add-0"]
        assert "backoff banned" in report.summary()
        # The rewrite really happened once unbanned.
        assert eg.equiv(parse("(+ x0 0)"), parse("x0"))

    def test_banned_rule_defers_saturation(self):
        """With nothing else driving growth, a banned rule cannot let
        the runner declare saturation; the ban is fast-forwarded and the
        rule eventually fires."""
        eg = _graph_with_add0_sites(10)
        report = Runner(
            [rewrite("add-0", "(+ ?a 0)", "?a")],
            match_limit=3,
            iter_limit=30,
        ).run(eg)
        assert report.stop_reason == StopReason.SATURATED
        assert eg.equiv(parse("(+ x0 0)"), parse("x0"))
        assert report.rule_stats["add-0"].times_banned >= 1


class TestRunnerStopReasons:
    def test_saturated(self):
        eg = EGraph()
        eg.add_term(parse("(+ (+ x 0) 0)"))
        report = Runner([rewrite("add-0", "(+ ?a 0)", "?a")]).run(eg)
        assert report.stop_reason == StopReason.SATURATED

    def test_iteration_limit(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        report = Runner([_counter_rule()], iter_limit=3, node_limit=10_000).run(eg)
        assert report.stop_reason == StopReason.ITERATION_LIMIT
        assert len(report.iterations) == 3

    def test_node_limit(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        report = Runner([_counter_rule()], node_limit=20, iter_limit=1000).run(eg)
        assert report.stop_reason == StopReason.NODE_LIMIT
        assert report.timed_out

    def test_time_limit_between_iterations(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        report = Runner(
            [_counter_rule(sleep=0.02)],
            iter_limit=1_000_000,
            node_limit=10_000_000,
            time_limit=0.2,
        ).run(eg)
        assert report.stop_reason == StopReason.TIME_LIMIT

    def test_mid_search_timeout_applies_nothing(self):
        """When the deadline fires during search, the iteration's
        matches are discarded: the graph keeps its last rebuilt state."""
        eg = EGraph()
        root = eg.add_term(parse("(+ x 0)"))

        def slow_searcher(egr):
            time.sleep(0.2)
            for m in rewrite("add-0", "(+ ?a 0)", "?a").search(egr):
                yield m

        report = Runner(
            [CustomRewrite("slow-add-0", slow_searcher)], time_limit=0.05
        ).run(eg)
        assert report.stop_reason == StopReason.TIME_LIMIT
        assert report.iterations == []
        assert not eg.equiv(parse("(+ x 0)"), parse("x"))
        assert root == eg.find(root)

    def test_slow_search_stops_within_twice_the_limit(self):
        """Cooperative deadlines: an explosive searcher that would run
        for seconds yields mid-rule, bounding overshoot."""
        eg = EGraph()
        cid = eg.add_term(parse("x"))

        def endless_searcher(egr):
            while True:
                time.sleep(0.005)
                yield Match(cid, lambda e: None)

        time_limit = 0.3
        start = time.perf_counter()
        report = Runner(
            [CustomRewrite("endless", endless_searcher)], time_limit=time_limit
        ).run(eg)
        elapsed = time.perf_counter() - start
        assert report.stop_reason == StopReason.TIME_LIMIT
        assert elapsed < 2 * time_limit

    def test_memory_limit(self):
        eg = _graph_with_add0_sites(200)
        tracemalloc.start()
        try:
            report = Runner(
                [rewrite("add-0", "(+ ?a 0)", "?a")],
                memory_limit_bytes=1,
                iter_limit=5,
            ).run(eg)
        finally:
            tracemalloc.stop()
        assert report.stop_reason == StopReason.MEMORY_LIMIT
        assert report.timed_out

    def test_zero_iteration_run_summary(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        report = Runner([_counter_rule()], iter_limit=0).run(eg)
        assert report.stop_reason == StopReason.ITERATION_LIMIT
        assert report.iterations == []
        assert "stopped before the first iteration" in report.summary()

    def test_zero_budget_reports_time_limit(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        report = Runner([_counter_rule()], iter_limit=0, time_limit=0).run(eg)
        assert report.stop_reason == StopReason.TIME_LIMIT
        assert "time_limit" in report.summary()


class TestRunnerErrorRecovery:
    @staticmethod
    def _crash_on_second_search():
        calls = {"n": 0}

        def searcher(eg):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("injected searcher crash")
            return iter(())

        return CustomRewrite("crashy", searcher)

    def test_searcher_crash_preserves_prior_work(self):
        eg = EGraph()
        eg.add_term(parse("(+ x 0)"))
        report = Runner(
            [rewrite("add-0", "(+ ?a 0)", "?a"), self._crash_on_second_search()]
        ).run(eg)
        assert report.stop_reason == StopReason.ERROR
        assert report.errored
        assert report.failed_rule == "crashy"
        assert "RuntimeError" in report.error
        assert "error in crashy" in report.summary()
        # Iteration 0's union survived the iteration-1 crash.
        assert eg.equiv(parse("(+ x 0)"), parse("x"))

    def test_searcher_crash_with_checkpoint(self):
        eg = EGraph()
        root = eg.add_term(parse("(+ x 0)"))
        report = Runner(
            [rewrite("add-0", "(+ ?a 0)", "?a"), self._crash_on_second_search()],
            checkpoint=True,
        ).run(eg)
        assert report.stop_reason == StopReason.ERROR
        # The in-place restore keeps caller-held ids valid.
        assert eg.find(root) == eg.find(eg.add_term(parse("(+ x 0)")))
        assert eg.equiv(parse("(+ x 0)"), parse("x"))

    def test_applier_crash_rebuilds_consistent_graph(self):
        eg = EGraph()
        cid = eg.add_term(parse("(+ x 0)"))

        def bad_build(e):
            raise RuntimeError("injected applier crash")

        def searcher(egr):
            yield Match(cid, bad_build)

        report = Runner(
            [rewrite("add-0", "(+ ?a 0)", "?a"), CustomRewrite("bad-applier", searcher)]
        ).run(eg)
        assert report.stop_reason == StopReason.ERROR
        assert report.failed_rule == "bad-applier"
        # add-0's matches were applied before the crash and the handler
        # rebuilt, so the surviving graph reflects them consistently.
        assert eg.equiv(parse("(+ x 0)"), parse("x"))

    def test_catch_errors_false_propagates(self):
        eg = EGraph()
        eg.add_term(parse("(+ x 0)"))

        def searcher(egr):
            raise RuntimeError("boom")
            yield  # pragma: no cover

        runner = Runner([CustomRewrite("boom", searcher)], catch_errors=False)
        with pytest.raises(RuntimeError):
            runner.run(eg)

    def test_rule_stats_exposed_in_report(self):
        eg = EGraph()
        eg.add_term(parse("(+ (+ x 0) 0)"))
        report = Runner([rewrite("add-0", "(+ ?a 0)", "?a")]).run(eg)
        assert "add-0" in report.rule_stats
        assert report.rule_stats["add-0"].matches >= 1
        assert report.rule_stats["add-0"].search_time >= 0.0
