"""Unit tests for the symbolic frontend (repro.frontend)."""

import pytest

from repro.dsl import evaluate_output, parse
from repro.frontend import (
    OutputArray,
    Spec,
    Sym,
    SymbolicArray,
    lift,
    random_inputs,
    run_reference,
    sym_call,
    sym_sgn,
    sym_sqrt,
    wrap,
)
from repro.frontend.lift import ArrayDecl


class TestSym:
    def test_add_builds_term(self):
        s = wrap(1) + wrap(2)
        # Constant folding happens during tracing.
        assert s.term == parse("3")

    def test_symbolic_add(self):
        a = SymbolicArray("a", 4)
        s = a[0] + a[1]
        assert s.term == parse("(+ (Get a 0) (Get a 1))")

    def test_reverse_operators(self):
        a = SymbolicArray("a", 2)
        assert (2 - a[0]).term == parse("(- 2 (Get a 0))")
        assert (3 * a[0]).term == parse("(* 3 (Get a 0))")
        assert (1 / a[0]).term == parse("(/ 1 (Get a 0))")

    def test_peephole_identities(self):
        a = SymbolicArray("a", 2)
        assert (a[0] + 0).term == a[0].term
        assert (0 + a[0]).term == a[0].term
        assert (a[0] * 1).term == a[0].term
        assert (a[0] * 0).term == parse("0")
        assert (a[0] - 0).term == a[0].term
        assert (a[0] / 1).term == a[0].term

    def test_neg(self):
        a = SymbolicArray("a", 1)
        assert (-a[0]).term == parse("(neg (Get a 0))")
        assert (-wrap(3)).term == parse("-3")

    def test_sqrt_sgn_symbolic(self):
        a = SymbolicArray("a", 1)
        assert sym_sqrt(a[0]).term == parse("(sqrt (Get a 0))")
        assert sym_sgn(a[0]).term == parse("(sgn (Get a 0))")

    def test_sqrt_sgn_concrete(self):
        assert sym_sqrt(9.0) == 3.0
        assert sym_sgn(-4) == -1.0

    def test_call(self):
        a = SymbolicArray("a", 1)
        t = sym_call("myfn", a[0], 2)
        assert t.term == parse("(myfn (Get a 0) 2)")

    def test_data_dependent_branch_rejected(self):
        a = SymbolicArray("a", 2)
        with pytest.raises(TypeError, match="data-dependent"):
            if a[0] < a[1]:
                pass

    def test_bool_rejected(self):
        a = SymbolicArray("a", 1)
        with pytest.raises(TypeError):
            bool(a[0])

    def test_wrap_rejects_strings(self):
        with pytest.raises(TypeError):
            wrap("nope")


class TestSymbolicArray:
    def test_flat_indexing(self):
        a = SymbolicArray("a", 4)
        assert a[2].term == parse("(Get a 2)")

    def test_2d_indexing(self):
        a = SymbolicArray("a", 6, (2, 3))
        assert a[1][2].term == parse("(Get a 5)")
        assert a[1, 2].term == parse("(Get a 5)")

    def test_out_of_range(self):
        a = SymbolicArray("a", 4)
        with pytest.raises(IndexError):
            a[4]

    def test_2d_out_of_range(self):
        a = SymbolicArray("a", 6, (2, 3))
        with pytest.raises(IndexError):
            a[2][0]
        with pytest.raises(IndexError):
            a[0][3]

    def test_shape_length_mismatch(self):
        with pytest.raises(ValueError):
            SymbolicArray("a", 5, (2, 3))

    def test_iteration(self):
        a = SymbolicArray("a", 4)
        assert [s.term for s in a] == [parse(f"(Get a {i})") for i in range(4)]

    def test_len_2d_is_rows(self):
        assert len(SymbolicArray("a", 6, (2, 3))) == 2


class TestOutputArray:
    def test_initialized_to_zero(self):
        out = OutputArray(3)
        assert out.values == [0.0, 0.0, 0.0]

    def test_accumulation(self):
        a = SymbolicArray("a", 2)
        out = OutputArray(1)
        out[0] += a[0]
        out[0] += a[1]
        assert wrap(out[0]).term == parse("(+ (Get a 0) (Get a 1))")

    def test_2d_write(self):
        out = OutputArray(4, (2, 2))
        out[1][0] = 7.0
        assert out.values[2] == 7.0
        out[0, 1] = 3.0
        assert out.values[1] == 3.0

    def test_terms_include_constants(self):
        out = OutputArray(2)
        out[1] = 5.0
        assert out.terms() == [parse("0"), parse("5")]


class TestLift:
    def test_vector_add(self):
        def vadd(a, b, o):
            for i in range(3):
                o[i] = a[i] + b[i]

        spec = lift("vadd", vadd, [("a", 3), ("b", 3)], [("o", 3)])
        assert spec.n_outputs == 3
        assert spec.term.args[0] == parse("(+ (Get a 0) (Get b 0))")

    def test_2d_matmul_lift(self):
        def mm(a, b, c):
            for i in range(2):
                for j in range(2):
                    for k in range(2):
                        c[i][j] += a[i][k] * b[k][j]

        spec = lift("mm", mm, [("a", (2, 2)), ("b", (2, 2))], [("c", (2, 2))])
        assert spec.n_outputs == 4
        # c[0][0] = a00*b00 + a01*b10
        assert spec.term.args[0] == parse(
            "(+ (* (Get a 0) (Get b 0)) (* (Get a 1) (Get b 2)))"
        )

    def test_multiple_outputs_concatenate(self):
        def two(a, x, y):
            x[0] = a[0]
            y[0] = a[1]
            y[1] = a[0] + a[1]

        spec = lift("two", two, [("a", 2)], [("x", 1), ("y", 2)])
        assert spec.n_outputs == 3
        assert spec.term.args[2] == parse("(+ (Get a 0) (Get a 1))")

    def test_unwritten_outputs_are_zero(self):
        def noop(a, o):
            o[0] = a[0]

        spec = lift("partial", noop, [("a", 1)], [("o", 3)])
        assert spec.term.args[1] == parse("0")

    def test_duplicate_names_rejected(self):
        def f(a, b, o):
            o[0] = a[0]

        with pytest.raises(ValueError):
            lift("dup", f, [("a", 1), ("a", 1)], [("o", 1)])

    def test_spec_validates_output_count(self):
        with pytest.raises(ValueError):
            Spec(
                "bad",
                (ArrayDecl("a", 1),),
                (ArrayDecl("o", 2),),
                parse("(List (Get a 0))"),
            )

    def test_spec_requires_list(self):
        with pytest.raises(ValueError):
            Spec("bad", (ArrayDecl("a", 1),), (ArrayDecl("o", 1),), parse("(Get a 0)"))


class TestRunReference:
    def test_concrete_matches_symbolic(self, rng):
        def kernel(a, b, o):
            for i in range(4):
                o[i] = a[i] * b[i] + a[(i + 1) % 4]

        spec = lift("k", kernel, [("a", 4), ("b", 4)], [("o", 4)])
        env = random_inputs(spec, rng)
        concrete = run_reference(kernel, spec, env)
        symbolic = evaluate_output(spec.term, env)
        for c, s in zip(concrete, symbolic):
            assert abs(c - s) < 1e-9

    def test_wrong_input_length_rejected(self):
        def kernel(a, o):
            o[0] = a[0]

        spec = lift("k", kernel, [("a", 2)], [("o", 1)])
        with pytest.raises(ValueError):
            run_reference(kernel, spec, {"a": [1.0]})

    def test_random_inputs_shapes(self):
        def kernel(a, b, o):
            o[0] = a[0] + b[0, 0]

        spec = lift("k", kernel, [("a", 2), ("b", (2, 2))], [("o", 1)])
        env = random_inputs(spec)
        assert len(env["a"]) == 2
        assert len(env["b"]) == 4
