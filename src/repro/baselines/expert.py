"""Expert hand-tuned kernel (paper Section 5.4).

The paper compares Diospyros against "proprietary hand-tuned code
written for the Fusion G3 by a DSP expert for a single fixed size,
2x3 by 3x3" and reports Diospyros within 8% (39 vs 36 cycles), with
the same operation mix: two vector multiplies and four vector
multiply–accumulates.

We cannot ship the proprietary kernel, so this module hand-writes the
equivalent strategy directly in the IR, the way a DSP engineer would:
manually derived shuffle index operands, whole-register loads, and
exactly 2 ``vmul`` + 4 ``vmac``.

Layout (row-major flat):
  a = [a00 a01 a02 a10 a11 a12]           (2x3)
  b = [b00 b01 b02 b10 b11 b12 b20 b21 b22]  (3x3)
  out = [c00 c01 c02 c10 c11 c12]          (2x3)

Chunk 0 computes lanes [c00 c01 c02 c10]; chunk 1 computes
[c11 c12 - -] and stores two lanes.
"""

from __future__ import annotations

from typing import Optional

from ..backend import vir
from ..backend.vir import Program
from ..kernels.base import Kernel

__all__ = ["expert_kernel", "expert_matmul_2x3_3x3"]


def expert_kernel(kernel: Kernel) -> Optional[Program]:
    """The expert implementation, available only for MatMul 2x3*3x3."""
    if kernel.category == "MatMul" and kernel.params == {"m": 2, "k": 3, "n": 3}:
        return expert_matmul_2x3_3x3(kernel)
    return None


def expert_matmul_2x3_3x3(kernel: Kernel) -> Program:
    spec = kernel.spec()
    program = Program(
        name=f"{kernel.name}-expert",
        inputs={d.name: max(d.length, 8 if d.name == "a" else d.length) for d in spec.inputs},
        outputs={"out": spec.n_outputs},
        vector_width=4,
    )
    e = program.emit

    # Whole-register loads (a is padded to 8 so the offset-2 load is
    # in bounds, the usual aligned-buffer trick).
    e(vir.VLoad("va", "a", 0))    # [a00 a01 a02 a10]
    e(vir.VLoad("va2", "a", 2))   # [a02 a10 a11 a12]
    e(vir.VLoad("vb0", "b", 0))   # [b00 b01 b02 b10]
    e(vir.VLoad("vb1", "b", 3))   # [b10 b11 b12 b20]
    e(vir.VLoad("vb2", "b", 5))   # [b12 b20 b21 b22]

    # ---- chunk 0: [c00 c01 c02 c10] ----
    e(vir.VShuffle("sa0", "va", (0, 0, 0, 3)))        # [a00 a00 a00 a10]
    e(vir.VShuffle("sb0", "vb0", (0, 1, 2, 0)))       # [b00 b01 b02 b00]
    e(vir.VBin("*", "acc0", "sa0", "sb0"))

    e(vir.VSelect("sa1", "va", "va2", (1, 1, 1, 6)))  # [a01 a01 a01 a11]
    e(vir.VShuffle("sb1", "vb1", (0, 1, 2, 0)))       # [b10 b11 b12 b10]
    e(vir.VMac("acc0b", "acc0", "sa1", "sb1"))

    e(vir.VSelect("sa2", "va", "va2", (2, 2, 2, 7)))  # [a02 a02 a02 a12]
    e(vir.VShuffle("sb2", "vb2", (1, 2, 3, 1)))       # [b20 b21 b22 b20]
    e(vir.VMac("acc0c", "acc0b", "sa2", "sb2"))
    e(vir.VStore("out", 0, "acc0c", 4))

    # ---- chunk 1: [c11 c12 - -] ----
    e(vir.VShuffle("ta0", "va2", (1, 1, 1, 1)))       # splat a10
    e(vir.VShuffle("tb0", "vb0", (1, 2, 0, 0)))       # [b01 b02 - -]
    e(vir.VBin("*", "acc1", "ta0", "tb0"))

    e(vir.VShuffle("ta1", "va2", (2, 2, 2, 2)))       # splat a11
    e(vir.VShuffle("tb1", "vb1", (1, 2, 0, 0)))       # [b11 b12 - -]
    e(vir.VMac("acc1b", "acc1", "ta1", "tb1"))

    e(vir.VShuffle("ta2", "va2", (3, 3, 3, 3)))       # splat a12
    e(vir.VShuffle("tb2", "vb2", (2, 3, 0, 0)))       # [b21 b22 - -]
    e(vir.VMac("acc1c", "acc1b", "ta2", "tb2"))
    e(vir.VStore("out", 4, "acc1c", 2))

    return program
