"""End-to-end deadline propagation under chaos.

Satellite of the gateway PR (extends the drain patterns of
``test_service_shutdown.py``): a client deadline riding
``CompileOptions.deadline`` must be honored at every layer --

* ``compile_spec`` refuses an already-expired deadline before work;
* the saturation ``time_limit`` is clamped to the residual budget;
* the supervisor sheds pre-fork when the residual is below its floor,
  clamps retry backoff sleeps, and kills a deadline-ignoring worker
  shortly after the budget runs out;
* the gateway enforces each waiter's own residual on shared futures.

The chaos case is the load-bearing one: a fault-injected stall at the
worker's saturation seam must surface as a *typed* deadline-family
error within seconds of the deadline -- never minutes later -- with the
worker reaped and no queue debris.
"""

import dataclasses
import time

import pytest

from repro.chaos.inject import FaultPlan, FaultSpec, active_plan
from repro.compiler import CompileOptions, compile_spec
from repro.compiler import _clamp_to_deadline
from repro.errors import (
    CompileError,
    DeadlineExceededError,
    is_resource_failure,
)
from repro.frontend.lift import lift
from repro.service import CompileService, RetryPolicy, WorkerLimits

FAST = CompileOptions(
    time_limit=5.0, node_limit=20_000, iter_limit=8, validate=False
)
QUICK = RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_jitter=0.0)


def _spec(name="deadline-k"):
    def body(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    return lift(name, body, [("a", 2), ("b", 2)], [("out", 2)])


# --------------------------------------------------------- compiler layer


def test_expired_deadline_refused_before_any_work():
    options = dataclasses.replace(FAST, deadline=time.time() - 1.0)
    with pytest.raises(DeadlineExceededError) as info:
        compile_spec(_spec(), options)
    err = info.value
    assert isinstance(err, CompileError)
    assert err.stage == "deadline"
    assert err.residual is not None and err.residual <= 0


def test_time_limit_clamped_to_residual_budget():
    options = dataclasses.replace(FAST, time_limit=50.0, deadline=time.time() + 2.0)
    clamped = _clamp_to_deadline(_spec(), options)
    assert clamped.time_limit <= 2.0
    # A shorter explicit limit is kept as-is.
    options = dataclasses.replace(FAST, time_limit=0.5, deadline=time.time() + 2.0)
    assert _clamp_to_deadline(_spec(), options).time_limit == 0.5


def test_deadline_excluded_from_cache_key():
    from repro.service.cache import options_fingerprint

    base = FAST
    with_deadline = dataclasses.replace(FAST, deadline=time.time() + 9.0)
    assert options_fingerprint(base) == options_fingerprint(with_deadline)


# -------------------------------------------------------- supervisor layer


def test_supervisor_sheds_pre_fork_below_budget_floor():
    service = CompileService(cache=None, isolate=False, policy=QUICK)
    options = dataclasses.replace(FAST, deadline=time.time() + 0.01)
    with pytest.raises(DeadlineExceededError):
        service.compile_spec(_spec(), options)
    assert service.stats.deadline_sheds == 1
    assert service.stats.compiles == 0  # shed before any attempt


def test_generous_deadline_compiles_normally():
    service = CompileService(cache=None, isolate=False, policy=QUICK)
    options = dataclasses.replace(FAST, deadline=time.time() + 30.0)
    result = service.compile_spec(_spec(), options)
    assert result.program
    assert service.stats.deadline_sheds == 0


def test_chaos_stall_surfaces_typed_deadline_error_within_bound():
    """The satellite's chaos case: a 30s injected sleep at the runner's
    iteration seam inside a sandboxed worker, against a ~1.5s deadline.
    The supervisor's deadline-clamped kill-timeout must SIGKILL the
    stalled worker shortly after the budget expires, the retry must be
    shed pre-fork (no backoff sleep past the deadline), and the caller
    sees a typed deadline error chaining the resource failure -- all
    within a few seconds, with the worker reaped."""
    spec = _spec("deadline-stall")
    service = CompileService(
        cache=None,
        isolate=True,
        policy=QUICK,
        limits=WorkerLimits(kill_timeout=120.0),  # deadline must override
    )
    plan = FaultPlan(
        [FaultSpec("runner.iteration", "sleep", nth=1, seconds=30.0)], seed=0
    )
    options = dataclasses.replace(FAST, deadline=time.time() + 1.5)
    start = time.monotonic()
    with active_plan(plan):
        with pytest.raises(DeadlineExceededError) as info:
            service.compile_spec(spec, options)
    elapsed = time.monotonic() - start
    err = info.value
    assert elapsed < 8.0, f"deadline error took {elapsed:.1f}s to surface"
    assert err.stage == "deadline"
    # The typed error chains what actually burned the budget.
    assert err.__cause__ is not None and is_resource_failure(err.__cause__)
    assert service.stats.worker_timeouts >= 1
    assert service.stats.deadline_sheds == 1
    assert service._live == []  # the stalled worker was reaped
    service.shutdown()


def test_retry_backoff_never_sleeps_past_deadline():
    """With a large backoff_base and a failing first attempt, a naive
    retry would sleep 5s; the clamp must fail the request at the
    deadline instead."""
    spec = _spec("deadline-backoff")
    service = CompileService(
        cache=None,
        isolate=True,
        policy=RetryPolicy(
            max_attempts=3, backoff_base=5.0, backoff_jitter=0.0
        ),
    )
    plan = FaultPlan(
        [FaultSpec("runner.iteration", "sleep", nth=1, seconds=30.0)], seed=0
    )
    options = dataclasses.replace(FAST, deadline=time.time() + 1.5)
    start = time.monotonic()
    with active_plan(plan):
        with pytest.raises(DeadlineExceededError):
            service.compile_spec(spec, options)
    elapsed = time.monotonic() - start
    # kill at ~residual+2s grace; a 5s backoff sleep on top would blow
    # this bound.
    assert elapsed < 8.0, f"retry slept past the deadline ({elapsed:.1f}s)"
    service.shutdown()
