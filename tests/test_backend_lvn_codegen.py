"""Unit tests for LVN/DCE and C code generation."""

import pytest

from repro.backend import vir
from repro.backend.codegen import c_line_count, emit_c
from repro.backend.lvn import eliminate_dead_code, optimize, run_lvn
from repro.backend.vir import Program
from repro.machine import simulate


def straight(instrs, inputs=None, outputs=None):
    p = Program("t", inputs=inputs or {"a": 8}, outputs=outputs or {"out": 4})
    p.extend(instrs)
    return p


A = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


class TestLVN:
    def test_duplicate_loads_merged(self):
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SLoad("s1", "a", 0),
            vir.SBin("*", "s2", "s0", "s1"),
            vir.SStore("out", 0, "s2"),
        ])
        optimized = run_lvn(p)
        assert optimized.opcode_histogram()["sload"] == 1
        assert simulate(optimized, {"a": A}).output("out")[0] == 1.0

    def test_duplicate_vector_ops_merged(self):
        p = straight([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "a", 0),
            vir.VBin("+", "v2", "v0", "v0"),
            vir.VBin("+", "v3", "v1", "v1"),
            vir.VStore("out", 0, "v2", 4),
            vir.VStore("out", 0, "v3", 4),
        ])
        optimized = run_lvn(p)
        hist = optimized.opcode_histogram()
        assert hist["vload"] == 1 and hist["vbin.+"] == 1

    def test_commutative_operands_canonicalized(self):
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SLoad("s1", "a", 1),
            vir.SBin("+", "s2", "s0", "s1"),
            vir.SBin("+", "s3", "s1", "s0"),
            vir.SStore("out", 0, "s2"),
            vir.SStore("out", 1, "s3"),
        ])
        assert run_lvn(p).opcode_histogram()["sbin.+"] == 1

    def test_noncommutative_not_merged(self):
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SLoad("s1", "a", 1),
            vir.SBin("-", "s2", "s0", "s1"),
            vir.SBin("-", "s3", "s1", "s0"),
            vir.SStore("out", 0, "s2"),
            vir.SStore("out", 1, "s3"),
        ])
        assert run_lvn(p).opcode_histogram()["sbin.-"] == 2

    def test_vmac_multiplicands_commute(self):
        p = straight([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "a", 4),
            vir.VConst("vz", (0.0,) * 4),
            vir.VMac("v2", "vz", "v0", "v1"),
            vir.VMac("v3", "vz", "v1", "v0"),
            vir.VStore("out", 0, "v2", 4),
            vir.VStore("out", 0, "v3", 4),
        ])
        assert run_lvn(p).opcode_histogram()["vmac"] == 1

    def test_semantics_preserved(self):
        p = straight([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "a", 0),
            vir.VBin("*", "v2", "v0", "v1"),
            vir.VStore("out", 0, "v2", 4),
        ])
        before = simulate(p, {"a": A}).output("out")
        after = simulate(optimize(p), {"a": A}).output("out")
        assert before == after

    def test_loop_programs_untouched(self):
        p = straight([
            vir.Label("top"),
            vir.SLoad("s0", "a", 0),
            vir.SLoad("s1", "a", 0),
            vir.SStore("out", 0, "s1"),
        ])
        assert run_lvn(p) is p
        assert eliminate_dead_code(p) is p


class TestDCE:
    def test_unused_results_dropped(self):
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SLoad("s1", "a", 1),  # dead
            vir.SStore("out", 0, "s0"),
        ])
        optimized = eliminate_dead_code(p)
        assert optimized.opcode_histogram()["sload"] == 1

    def test_transitively_dead_chain(self):
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SBin("*", "s1", "s0", "s0"),  # dead
            vir.SUn("neg", "s2", "s1"),  # dead
            vir.SStore("out", 0, "s0"),
        ])
        optimized = eliminate_dead_code(p)
        assert len(optimized) == 2

    def test_stores_never_dropped(self):
        p = straight([
            vir.SConst("s0", 1.0),
            vir.SStore("out", 0, "s0"),
            vir.SStore("out", 1, "s0"),
        ])
        assert len(eliminate_dead_code(p)) == 3

    def test_optimize_fixpoint(self):
        """LVN exposing dead code that DCE then removes."""
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SLoad("s1", "a", 0),  # LVN merges into s0, then dead
            vir.SStore("out", 0, "s0"),
        ])
        assert len(optimize(p)) == 2


class TestCodegen:
    def test_function_signature(self):
        p = straight([vir.SConst("s0", 1.0), vir.SStore("out", 0, "s0")])
        text = emit_c(p)
        assert "void t(const float a[8], float out[4])" in text

    def test_vector_intrinsics_names(self):
        p = straight([
            vir.VLoad("v0", "a", 0),
            vir.VShuffle("v1", "v0", (0, 0, 1, 1)),
            vir.VLoad("v2", "a", 4),
            vir.VSelect("v3", "v1", "v2", (0, 4, 1, 5)),
            vir.VMac("v4", "v3", "v1", "v2"),
            vir.VStore("out", 0, "v4", 4),
        ])
        text = emit_c(p)
        assert "PDX_LAV_MX32" in text
        assert "PDX_SHFL_MX32(v0, {0, 0, 1, 1})" in text
        assert "PDX_SEL_MX32(v1, v2, {0, 4, 1, 5})" in text
        assert "PDX_MAC_MX32(v3, v1, v2)" in text
        assert "PDX_SAV_MX32(v4, &out[0], 4)" in text

    def test_scalar_c(self):
        p = straight([
            vir.SLoad("s0", "a", 2),
            vir.SUn("sqrt", "s1", "s0"),
            vir.SBin("/", "s2", "s1", "s0"),
            vir.SStore("out", 0, "s2"),
        ])
        text = emit_c(p)
        assert "float s0 = a[2];" in text
        assert "sqrtf(s0)" in text
        assert "s1 / s0" in text

    def test_control_flow_rendering(self):
        p = straight([
            vir.Label("top"),
            vir.SConst("s0", 0.0),
            vir.Branch("lt", "s0", "s0", "top"),
            vir.Jump("top"),
        ])
        text = emit_c(p)
        assert "top:" in text
        assert "if (s0 < s0) goto top;" in text
        assert "goto top;" in text

    def test_line_count(self):
        p = straight([vir.SConst("s0", 1.0), vir.SStore("out", 0, "s0")])
        assert c_line_count(p) == 5  # comment, signature, 2 body, brace

    def test_name_sanitized(self):
        p = Program("2dconv-3x3", inputs={"a": 4}, outputs={"out": 4})
        assert "void k_2dconv_3x3(" in emit_c(p)

    def test_deterministic(self):
        p = straight([vir.VConst("v0", (1.0, 0.5, 2.0, 0.0)), vir.VStore("out", 0, "v0", 4)])
        assert emit_c(p) == emit_c(p)
