"""Unit tests for the rewrite-rule families (repro.rules).

Every rule family is checked two ways: (1) the specific equivalences
the paper describes are discovered, and (2) saturation preserves
concrete semantics on random inputs (the fundamental soundness
contract of the rewrite system).
"""

import random

import pytest

from repro.costs import DiospyrosCostModel
from repro.dsl import evaluate_output, parse
from repro.egraph import EGraph, Extractor, Runner
from repro.rules import (
    ac_rules,
    build_ruleset,
    scalar_rules,
)


def saturate(text, rules, **kw):
    eg = EGraph()
    root = eg.add_term(parse(text))
    report = Runner(rules, **kw).run(eg)
    return eg, root, report


def check_semantics_preserved(spec_text, rules, env, n_outputs=None, seed=3):
    """Extract under the vector cost model and compare concrete
    outputs with the original spec on the given environment."""
    eg, root, _ = saturate(spec_text, rules, iter_limit=25, node_limit=30_000)
    term = Extractor(eg, DiospyrosCostModel()).extract(root).term
    spec = parse(spec_text)
    expected = evaluate_output(spec, env)
    actual = evaluate_output(term, env)
    assert len(actual) >= len(expected)
    for a, b in zip(expected, actual):
        assert abs(a - b) < 1e-9 * max(1.0, abs(a)), (term.to_sexpr(), expected, actual)
    return term


class TestScalarRules:
    CASES = [
        ("(+ q 0)", "q"),
        ("(+ 0 q)", "q"),
        ("(- q 0)", "q"),
        ("(* q 1)", "q"),
        ("(* 1 q)", "q"),
        ("(* q 0)", "0"),
        ("(* 0 q)", "0"),
        ("(/ q 1)", "q"),
        ("(- q q)", "0"),
        ("(neg (neg q))", "q"),
        ("(neg q)", "(- 0 q)"),
        ("(* q -1)", "(neg q)"),
        ("(+ q (neg r))", "(- q r)"),
        ("(sqrt 0)", "0"),
        ("(sqrt 1)", "1"),
        ("(sgn 0)", "0"),
        ("(* (neg q) r)", "(neg (* q r))"),
    ]

    @pytest.mark.parametrize("lhs,rhs", CASES)
    def test_equivalence_discovered(self, lhs, rhs):
        eg, root, _ = saturate(lhs, scalar_rules())
        assert eg.equiv(parse(lhs), parse(rhs)), f"{lhs} !~ {rhs}"

    def test_reassociation_floats_subtractions(self):
        """(a - b) + c ~ (a + c) - b: the targeted AC recovery of
        Section 3.3 used for sign-mixed reductions."""
        eg, root, _ = saturate("(+ (- a b) c)", scalar_rules())
        assert eg.equiv(parse("(+ (- a b) c)"), parse("(- (+ a c) b)"))

    def test_fuse_subs(self):
        eg, root, _ = saturate("(- (- a b) c)", scalar_rules())
        assert eg.equiv(parse("(- (- a b) c)"), parse("(- a (+ b c))"))

    def test_unsound_rules_absent(self):
        """x/x is NOT rewritten to 1 (unsound at x = 0)."""
        eg, root, _ = saturate("(/ q q)", scalar_rules())
        assert not eg.equiv(parse("(/ q q)"), parse("1"))

    def test_scalar_rules_preserve_semantics(self, rng):
        env = {"a": [rng.uniform(-3, 3) for _ in range(4)]}
        check_semantics_preserved(
            "(List (+ (Get a 0) 0) (* (Get a 1) 1) (- (Get a 2) (Get a 2)) (neg (neg (Get a 3))))",
            scalar_rules(),
            env,
        )


class TestListSplitting:
    def test_exact_multiple(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(List (Get a 0) (Get a 1) (Get a 2) (Get a 3))", rules)
        expected = parse(
            "(Concat (Vec (Get a 0) (Get a 1)) (Vec (Get a 2) (Get a 3)))"
        )
        assert eg.equiv(
            parse("(List (Get a 0) (Get a 1) (Get a 2) (Get a 3))"), expected
        )

    def test_zero_padding(self):
        rules = build_ruleset(width=4)
        eg, root, _ = saturate("(List (Get a 0) (Get a 1) (Get a 2) (Get a 3) (Get a 4))", rules)
        expected = parse(
            "(Concat (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get a 4) 0 0 0))"
        )
        assert eg.equiv(
            parse("(List (Get a 0) (Get a 1) (Get a 2) (Get a 3) (Get a 4))"),
            expected,
        )

    def test_single_chunk(self):
        rules = build_ruleset(width=4)
        eg, root, _ = saturate("(List (Get a 0) (Get a 1))", rules)
        assert eg.equiv(
            parse("(List (Get a 0) (Get a 1))"),
            parse("(Vec (Get a 0) (Get a 1) 0 0)"),
        )


class TestBinaryVectorization:
    def test_paper_example(self):
        """The Section 3.2 rewrite: (Vec (+ a b) (+ c d)) =>
        (VecAdd (Vec a c) (Vec b d))."""
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (+ p q) (+ r s))", rules)
        assert eg.equiv(parse("(Vec (+ p q) (+ r s))"), parse("(VecAdd (Vec p r) (Vec q s))"))

    def test_zero_lane_vectorization(self):
        """The Section 3.3 zero-aware rewrite: (Vec (+ a b) 0 (+ c d) 0)
        vectorizes with zero padding in both operand vectors."""
        rules = build_ruleset(width=4)
        eg, root, _ = saturate("(Vec (+ p q) 0 (+ r s) 0)", rules)
        assert eg.equiv(
            parse("(Vec (+ p q) 0 (+ r s) 0)"),
            parse("(VecAdd (Vec p 0 r 0) (Vec q 0 s 0))"),
        )

    def test_subtraction_lanes(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (- p q) (- r s))", rules)
        assert eg.equiv(parse("(Vec (- p q) (- r s))"), parse("(VecMinus (Vec p r) (Vec q s))"))

    def test_division_lanes_with_zero(self):
        rules = build_ruleset(width=2)
        env = {"a": [3.0, 5.0], "b": [2.0, 4.0]}
        term = check_semantics_preserved(
            "(List (/ (Get a 0) (Get b 0)) (/ (Get a 1) (Get b 1)))",
            rules,
            env,
        )

    def test_mixed_ops_do_not_vectorize_binary(self):
        """(Vec (+ ..) (* ..)) must not become a single VecAdd/VecMul."""
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (+ p q) (* r s))", rules)
        assert not eg.equiv(parse("(Vec (+ p q) (* r s))"), parse("(VecAdd (Vec p r) (Vec q s))"))
        assert not eg.equiv(parse("(Vec (+ p q) (* r s))"), parse("(VecMul (Vec p r) (Vec q s))"))


class TestUnaryVectorization:
    @pytest.mark.parametrize(
        "scalar,vector",
        [("neg", "VecNeg"), ("sqrt", "VecSqrt"), ("sgn", "VecSgn")],
    )
    def test_unary_lanes(self, scalar, vector):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate(f"(Vec ({scalar} p) ({scalar} q))", rules)
        assert eg.equiv(
            parse(f"(Vec ({scalar} p) ({scalar} q))"),
            parse(f"({vector} (Vec p q))"),
        )

    def test_unary_with_zero_lane(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (neg p) 0)", rules)
        assert eg.equiv(parse("(Vec (neg p) 0)"), parse("(VecNeg (Vec p 0))"))


class TestMacRule:
    def test_basic_mac(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (+ a (* b c)) (+ d (* e f)))", rules)
        assert eg.equiv(
            parse("(Vec (+ a (* b c)) (+ d (* e f)))"),
            parse("(VecMAC (Vec a d) (Vec b e) (Vec c f))"),
        )

    def test_flipped_addend(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (+ (* b c) a) (+ d (* e f)))", rules)
        assert eg.equiv(
            parse("(Vec (+ (* b c) a) (+ d (* e f)))"),
            parse("(VecMAC (Vec a d) (Vec b e) (Vec c f))"),
        )

    def test_bare_product_lane(self):
        """A shorter lane (* b c) contributes a zero accumulator --
        the paper's boundary-condition case."""
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (* b c) (+ d (* e f)))", rules)
        assert eg.equiv(
            parse("(Vec (* b c) (+ d (* e f)))"),
            parse("(VecMAC (Vec 0 d) (Vec b e) (Vec c f))"),
        )

    def test_zero_lane(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (+ a (* b c)) 0)", rules)
        assert eg.equiv(
            parse("(Vec (+ a (* b c)) 0)"),
            parse("(VecMAC (Vec a 0) (Vec b 0) (Vec c 0))"),
        )

    def test_subtraction_negates_multiplicand(self):
        """(- a (* b c)) fuses as acc + (neg b) * c."""
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(Vec (- a (* b c)) (- d (* e f)))", rules)
        assert eg.equiv(
            parse("(Vec (- a (* b c)) (- d (* e f)))"),
            parse("(VecMAC (Vec a d) (Vec (neg b) (neg e)) (Vec c f))"),
        )

    def test_mac_chain_semantics(self, rng):
        """Dot-product-shaped lanes peel into chained MACs that compute
        the right values."""
        env = {
            "a": [rng.uniform(-2, 2) for _ in range(4)],
            "b": [rng.uniform(-2, 2) for _ in range(4)],
        }
        spec = (
            "(List"
            " (+ (* (Get a 0) (Get b 0)) (* (Get a 1) (Get b 1)))"
            " (+ (* (Get a 2) (Get b 2)) (* (Get a 3) (Get b 3))))"
        )
        term = check_semantics_preserved(spec, build_ruleset(width=2), env)
        assert "VecMAC" in term.to_sexpr() or "VecMul" in term.to_sexpr()


class TestVectorIdentities:
    def test_mac_fusion_bidirectional(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(VecAdd (Vec a b) (VecMul (Vec c d) (Vec e f)))", rules)
        assert eg.equiv(
            parse("(VecAdd (Vec a b) (VecMul (Vec c d) (Vec e f)))"),
            parse("(VecMAC (Vec a b) (Vec c d) (Vec e f))"),
        )

    def test_mac_zero_acc_is_mul(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(VecMAC (Vec 0 0) (Vec a b) (Vec c d))", rules)
        assert eg.equiv(
            parse("(VecMAC (Vec 0 0) (Vec a b) (Vec c d))"),
            parse("(VecMul (Vec a b) (Vec c d))"),
        )

    def test_vecadd_zero(self):
        rules = build_ruleset(width=2)
        eg, root, _ = saturate("(VecAdd (Vec a b) (Vec 0 0))", rules)
        assert eg.equiv(parse("(VecAdd (Vec a b) (Vec 0 0))"), parse("(Vec a b)"))


class TestAcRules:
    def test_commutativity(self):
        eg, root, _ = saturate("(+ p q)", scalar_rules() + ac_rules())
        assert eg.equiv(parse("(+ p q)"), parse("(+ q p)"))

    def test_associativity(self):
        eg, root, _ = saturate(
            "(+ (+ p q) r)", scalar_rules() + ac_rules(), iter_limit=10
        )
        assert eg.equiv(parse("(+ (+ p q) r)"), parse("(+ p (+ q r))"))

    def test_ac_grows_graph(self):
        """Full AC saturation produces a larger e-graph than the custom
        searchers (the Section 3.3 memory argument)."""
        spec = "(+ (+ (+ p q) r) s)"
        eg_off, _, _ = saturate(spec, scalar_rules(), iter_limit=8)
        eg_on, _, _ = saturate(spec, scalar_rules() + ac_rules(), iter_limit=8)
        assert eg_on.num_nodes > eg_off.num_nodes


class TestRulesetBuilder:
    def test_default_has_all_families(self):
        rules = build_ruleset(width=4)
        names = {r.name for r in rules}
        assert "list-split-w4" in names
        assert "vec-mac-w4" in names
        assert "add-0-r" in names

    def test_vector_disabled(self):
        names = {r.name for r in build_ruleset(width=4, enable_vector=False)}
        assert not any("vec" in n for n in names)

    def test_scalar_disabled(self):
        names = {r.name for r in build_ruleset(width=4, enable_scalar=False)}
        assert "add-0-r" not in names

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            build_ruleset(enable_scalar=False, enable_vector=False)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            build_ruleset(width=0)

    def test_extra_rules_appended(self):
        from repro.egraph import rewrite as mk

        extra = mk("recip", "(/ 1 ?x)", "(recip ?x)")
        rules = build_ruleset(width=4, extra_rules=[extra])
        assert rules[-1] is extra
