"""Stage-level performance benchmark harness (``repro bench``).

Runs a set of paper kernels plus fuzz-generated stress kernels through
the full lift -> saturate -> extract -> lower pipeline and records, per
kernel:

* per-stage wall-clock (saturation, extraction, lowering, total);
* e-graph growth (final nodes/classes, peak nodes, iterations);
* matcher work, by *deterministic counters*: candidate classes visited
  vs skipped by the dirty-set filter, compared against a full-rescan
  run of the same kernel;
* per-rule search statistics (matches, applied, search seconds, visit
  and skip counts, full rescans);
* the number of cross-iteration duplicate matches the runner dropped.

Every saturation runs with ``time_limit=None`` so the incremental and
full-rescan runs evolve the e-graph identically and the visited-class
ratio -- and the extracted term/cost identity check -- are exactly
reproducible; wall-clock numbers are reported for trend-watching, but
the regression *gate* primarily guards the counters, with a generous
2x slowdown threshold (and an absolute floor) on timings so CI noise
does not flap the job.

The result is written to ``BENCH_egraph.json``; see EXPERIMENTS.md for
how to read and update it, and ``benchmarks/bench_baseline.json`` for
the committed reference the CI perf-smoke job gates against.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .backend.lower import lower_spec_program
from .backend.lvn import optimize as lvn_optimize
from .compiler import CompileOptions
from .egraph.egraph import EGraph
from .egraph.extract import Extractor
from .egraph.runner import Runner, RunReport
from .frontend.lift import Spec
from .kernels import table1_kernels
from .rules import build_ruleset
from .validation.fuzz import random_spec

__all__ = [
    "BENCH_SCHEMA",
    "BenchGate",
    "bench_kernel",
    "bench_phased_kernel",
    "run_bench",
    "check_gate",
    "write_report",
]

BENCH_SCHEMA = "bench_egraph/v1"


def _git_commit() -> Optional[str]:
    """The repo's HEAD commit, for provenance in bench reports.  Never
    raises: outside a checkout (an installed wheel, a stripped CI
    artifact) provenance is simply absent."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    commit = out.stdout.strip()
    return commit or None

#: Table 1 kernels benchmarked in quick (CI) and full mode.
_QUICK_PAPER = [
    "matmul-2x2-2x2",
    "matmul-2x3-3x3",
    "2dconv-3x3-2x2",
    "2dconv-3x3-3x3",
]
_FULL_PAPER = _QUICK_PAPER + [
    "matmul-3x3-3x3",
    "matmul-4x4-4x4",
    "2dconv-3x5-3x3",
    "2dconv-4x4-3x3",
]
_QUICK_FUZZ = 2
_FULL_FUZZ = 6

#: Large kernels for the phased-vs-monolithic comparison (DESIGN.md
#: §13): sized so the default phase plan engages and the monolithic
#: path cannot reach the vectorized form within the phased node
#: budget.  Quick (CI) mode runs the 2DConv only; full mode adds the
#: 16x16 MatMul.
_QUICK_PHASED = ["2dconv-8x8-4x4"]
_FULL_PHASED = _QUICK_PHASED + ["matmul-16x16-16x16"]

#: Minimum stage duration (seconds) considered for the slowdown gate;
#: below this, timing noise dominates and the gate ignores the stage.
_GATE_FLOOR = 0.05
#: Maximum tolerated per-stage slowdown vs the committed baseline.
_GATE_MAX_SLOWDOWN = 2.0
#: Required dirty-set advantage on the largest kernel: the full-rescan
#: matcher must visit at least this many times more classes.
_GATE_MIN_VISIT_RATIO = 2.0


@dataclass
class BenchGate:
    """Outcome of the regression gate."""

    ok: bool = True
    failures: List[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)


def _bench_options(quick: bool, seed: int) -> CompileOptions:
    # time_limit=None: determinism is the whole point (see module
    # docstring); the node/iteration limits bound the run instead.
    return CompileOptions(
        time_limit=None,
        iter_limit=20 if quick else 30,
        node_limit=60_000 if quick else 200_000,
        validate=False,
        seed=seed,
    )


def _saturate(
    spec: Spec, options: CompileOptions, incremental: bool
) -> Tuple[EGraph, int, RunReport, float]:
    rules = build_ruleset(width=options.vector_width)
    egraph = EGraph()
    root = egraph.add_term(spec.term)
    runner = Runner(
        rules,
        iter_limit=options.iter_limit,
        node_limit=options.node_limit,
        time_limit=options.time_limit,
        incremental=incremental,
        rescan_stride=options.rescan_stride,
        catch_errors=False,
    )
    start = time.perf_counter()
    report = runner.run(egraph)
    return egraph, root, report, time.perf_counter() - start


def _matcher_totals(report: RunReport) -> Tuple[int, int]:
    visited = sum(s.classes_visited for s in report.rule_stats.values())
    skipped = sum(s.classes_skipped for s in report.rule_stats.values())
    return visited, skipped


def bench_kernel(spec: Spec, options: CompileOptions) -> Dict:
    """Benchmark one kernel; returns its JSON-ready record.

    The kernel is saturated twice -- dirty-set incremental and full
    rescan -- from identical starting e-graphs, then extracted from
    both graphs to verify the incremental matcher changed nothing.
    """
    from .observability import span

    with span("bench.kernel", kernel=spec.name):
        return _bench_kernel(spec, options)


def _bench_kernel(spec: Spec, options: CompileOptions) -> Dict:
    egraph, root, report, saturate_s = _saturate(spec, options, incremental=True)
    full_graph, full_root, full_report, _ = _saturate(
        spec, options, incremental=False
    )

    start = time.perf_counter()
    extraction = Extractor(egraph, options.cost_model()).extract(root)
    extract_s = time.perf_counter() - start

    start = time.perf_counter()
    program = lvn_optimize(
        lower_spec_program(spec, extraction.term, options.vector_width)
    )
    lower_s = time.perf_counter() - start

    full_extraction = Extractor(full_graph, options.cost_model()).extract(
        full_root
    )
    identical = (
        extraction.term == full_extraction.term
        and abs(extraction.cost - full_extraction.cost) < 1e-9
    )

    visited, skipped = _matcher_totals(report)
    full_visited, _ = _matcher_totals(full_report)
    ratio = full_visited / visited if visited else float("inf")

    rules = {
        name: {
            "matches": s.matches,
            "applied": s.applied,
            "search_time": round(s.search_time, 6),
            "classes_visited": s.classes_visited,
            "classes_skipped": s.classes_skipped,
            "full_rescans": s.full_rescans,
        }
        for name, s in sorted(report.rule_stats.items())
    }

    return {
        "name": spec.name,
        "stages": {
            "saturate": round(saturate_s, 6),
            "extract": round(extract_s, 6),
            "lower": round(lower_s, 6),
            "total": round(saturate_s + extract_s + lower_s, 6),
        },
        "egraph": {
            "nodes": egraph.num_nodes,
            "classes": egraph.num_classes,
            "peak_nodes": max((it.nodes for it in report.iterations), default=0),
            "iterations": len(report.iterations),
            "stop_reason": report.stop_reason,
        },
        "matcher": {
            "incremental": {"visited": visited, "skipped": skipped},
            "full_rescan": {"visited": full_visited},
            "visit_ratio": round(ratio, 3),
            "extraction_identical": identical,
        },
        "rules": rules,
        "deduped": sum(it.deduped for it in report.iterations),
        "ir_instructions": len(program),
        "extracted_cost": extraction.cost,
    }


def bench_phased_kernel(name: str, seed: int) -> Dict:
    """Benchmark one large kernel phased vs monolithic vs naive.

    Three measurements per kernel:

    * **phased**: the default phase plan (``phases="on"``), validated,
      with the plan's per-phase rounds and peak cumulative node count;
    * **monolithic**: a single saturation run capped at the *largest
      node budget any phase round used* -- the apples-to-apples
      comparison the gate relies on: at the same budget the monolithic
      path must hit its node watchdog before reaching the vectorized
      form, while the phased path completes;
    * **naive**: the unvectorized baseline program's cycle count, the
      quality floor the phased result must strictly beat.
    """
    from .baselines import baseline_program
    from .compiler import compile_spec
    from .evaluation.common import measure
    from .kernels import get_kernel
    from .observability import span

    with span("bench.phased", kernel=name):
        kernel = get_kernel(name)
        spec = kernel.spec()

        phased_options = CompileOptions(
            time_limit=None, validate=True, phases="on", seed=seed
        )
        start = time.perf_counter()
        phased = compile_spec(spec, phased_options)
        phased_total_s = time.perf_counter() - start
        phased_cycles, phased_ok = measure(phased.program, kernel, seed)
        plan = phased.phases
        node_budget = max(
            (r.node_limit for p in plan.phases for r in p.rounds), default=0
        )

        mono_options = CompileOptions(
            time_limit=None,
            node_limit=node_budget,
            validate=False,
            phases="off",
            seed=seed,
        )
        start = time.perf_counter()
        mono = compile_spec(spec, mono_options)
        mono_s = time.perf_counter() - start
        mono_cycles, mono_ok = measure(mono.program, kernel, seed)

        naive = baseline_program("naive", kernel)
        naive_cycles, _ = measure(naive, kernel, seed)

        return {
            "name": name,
            "naive_cycles": naive_cycles,
            "phased": {
                "plan": plan.plan_name,
                "completed": plan.completed,
                "saturate_seconds": round(plan.total_time, 6),
                "total_seconds": round(phased_total_s, 6),
                "peak_nodes": plan.peak_version,
                "node_budget": node_budget,
                "cycles": phased_cycles,
                "correct": phased_ok,
                "validated": phased.validated,
                "phases": [
                    {
                        "name": p.name,
                        "rounds": len(p.rounds),
                        "peak_nodes": p.peak_version,
                        "satisfied": p.sketch_satisfied,
                        "outcome": p.outcome or "hit",
                    }
                    for p in plan.phases
                ],
            },
            "monolithic": {
                "saturate_seconds": round(mono_s, 6),
                "peak_nodes": mono.report.final_version,
                "stop_reason": mono.report.stop_reason,
                "timed_out": mono.report.timed_out,
                "cycles": mono_cycles,
                "correct": mono_ok,
            },
        }


def _bench_specs(quick: bool, seed: int, name_filter: str = "") -> List[Spec]:
    wanted = _QUICK_PAPER if quick else _FULL_PAPER
    by_name = {k.name: k for k in table1_kernels()}
    specs = [by_name[name].spec() for name in wanted if name in by_name]
    rng = random.Random(seed)
    n_fuzz = _QUICK_FUZZ if quick else _FULL_FUZZ
    specs.extend(
        random_spec(
            rng, index=i, max_inputs=3, max_input_len=8, max_outputs=8
        )
        for i in range(n_fuzz)
    )
    if name_filter:
        specs = [s for s in specs if name_filter in s.name]
    return specs


def run_bench(
    quick: bool = True,
    seed: int = 0,
    name_filter: str = "",
    phased: bool = True,
) -> Dict:
    """Run the benchmark suite; returns the full JSON-ready report."""
    options = _bench_options(quick, seed)
    kernels = [
        bench_kernel(spec, options)
        for spec in _bench_specs(quick, seed, name_filter)
    ]
    largest = max(
        kernels, key=lambda k: k["egraph"]["nodes"], default=None
    )
    phased_names = _QUICK_PHASED if quick else _FULL_PHASED
    if name_filter:
        phased_names = [n for n in phased_names if name_filter in n]
    phased_entries = (
        [bench_phased_kernel(n, seed) for n in phased_names] if phased else []
    )
    return {
        "schema": BENCH_SCHEMA,
        "git_commit": _git_commit(),
        "quick": quick,
        "seed": seed,
        "kernels": kernels,
        "largest_kernel": largest["name"] if largest else None,
        "phased": phased_entries,
    }


def check_gate(report: Dict, baseline: Optional[Dict] = None) -> BenchGate:
    """Regression gate: deterministic counters always, timings when a
    baseline is supplied.

    Refuses to compare across schema versions: a report or baseline
    whose ``schema`` is not :data:`BENCH_SCHEMA` fails the gate outright
    rather than silently gating incomparable numbers."""
    gate = BenchGate()

    schema = report.get("schema")
    if schema != BENCH_SCHEMA:
        gate.fail(
            f"report schema {schema!r} does not match {BENCH_SCHEMA!r}; "
            "re-run `repro bench` with this tree"
        )
        return gate
    if baseline is not None:
        base_schema = baseline.get("schema")
        if base_schema != BENCH_SCHEMA:
            gate.fail(
                f"baseline schema {base_schema!r} does not match "
                f"{BENCH_SCHEMA!r}; regenerate benchmarks/bench_baseline.json"
            )
            return gate

    largest_name = report.get("largest_kernel")
    for kernel in report["kernels"]:
        matcher = kernel["matcher"]
        if not matcher["extraction_identical"]:
            gate.fail(
                f"{kernel['name']}: incremental and full-rescan runs "
                "extracted different terms/costs"
            )
        if (
            kernel["name"] == largest_name
            and matcher["visit_ratio"] < _GATE_MIN_VISIT_RATIO
        ):
            gate.fail(
                f"{kernel['name']}: dirty-set matcher visited only "
                f"{matcher['visit_ratio']}x fewer classes than full "
                f"rescan (require >= {_GATE_MIN_VISIT_RATIO}x)"
            )

    # Phased-saturation dichotomy (DESIGN.md §13): the phased run must
    # complete, validate, and strictly beat the naive baseline, while a
    # monolithic run capped at the same node budget must fail to finish.
    for entry in report.get("phased", []):
        name = entry["name"]
        phased = entry["phased"]
        mono = entry["monolithic"]
        if not phased["completed"]:
            gate.fail(f"{name}: phase plan {phased['plan']} did not complete")
        if not phased["validated"] or not phased["correct"]:
            gate.fail(
                f"{name}: phased output failed validation "
                f"(validated={phased['validated']}, correct={phased['correct']})"
            )
        if not phased["cycles"] < entry["naive_cycles"]:
            gate.fail(
                f"{name}: phased cycles {phased['cycles']} not below the "
                f"naive baseline {entry['naive_cycles']}"
            )
        if not mono["timed_out"]:
            gate.fail(
                f"{name}: monolithic saturation at the phased node budget "
                f"unexpectedly completed (stop={mono['stop_reason']}); the "
                "phased path no longer demonstrates an advantage"
            )

    if baseline is not None:
        base_kernels = {k["name"]: k for k in baseline.get("kernels", [])}
        for kernel in report["kernels"]:
            base = base_kernels.get(kernel["name"])
            if base is None:
                continue
            for stage, seconds in kernel["stages"].items():
                base_s = base["stages"].get(stage)
                if base_s is None:
                    continue
                slowdown = seconds / max(base_s, _GATE_FLOOR)
                if seconds > _GATE_FLOOR and slowdown > _GATE_MAX_SLOWDOWN:
                    gate.fail(
                        f"{kernel['name']}/{stage}: {seconds:.3f}s is "
                        f"{slowdown:.2f}x the baseline {base_s:.3f}s "
                        f"(limit {_GATE_MAX_SLOWDOWN}x)"
                    )
        base_phased = {e["name"]: e for e in baseline.get("phased", [])}
        for entry in report.get("phased", []):
            base = base_phased.get(entry["name"])
            if base is None:
                continue
            cycles = entry["phased"]["cycles"]
            base_cycles = base["phased"]["cycles"]
            # Cycle counts are deterministic: any increase is a real
            # quality regression, not noise.
            if cycles > base_cycles:
                gate.fail(
                    f"{entry['name']}: phased cycles regressed "
                    f"{base_cycles} -> {cycles}"
                )
            seconds = entry["phased"]["saturate_seconds"]
            base_s = base["phased"]["saturate_seconds"]
            slowdown = seconds / max(base_s, _GATE_FLOOR)
            if seconds > _GATE_FLOOR and slowdown > _GATE_MAX_SLOWDOWN:
                gate.fail(
                    f"{entry['name']}/phased-saturate: {seconds:.3f}s is "
                    f"{slowdown:.2f}x the baseline {base_s:.3f}s "
                    f"(limit {_GATE_MAX_SLOWDOWN}x)"
                )
    return gate


def write_report(report: Dict, gate: BenchGate, path: str) -> None:
    payload = dict(report)
    payload["gate"] = {"ok": gate.ok, "failures": gate.failures}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
