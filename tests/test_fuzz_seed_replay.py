"""Satellite: fuzz RNG seeding is explicit and PYTHONHASHSEED-
independent, so any divergence replays byte-identically on a machine
with a different (or randomized) hash seed."""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_SCRIPT = """
import json
from repro.conformance.corpus import spec_key
from repro.conformance.fuzzer import run_campaign
from repro.seeding import stable_rng
from repro.validation.fuzz import random_spec

rng = stable_rng(9, "hashseed-test")
keys = [spec_key(random_spec(rng, i)) for i in range(10)]
report = run_campaign(12, seed=5, mode="guided")
print(json.dumps({
    "keys": keys,
    "features": report.coverage.features(),
    "curve": report.coverage_curve,
    "divergent": [spec.name for spec, _ in report.divergent],
}, sort_keys=True))
"""


def _run(hashseed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        env=env,
        cwd=REPO,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_fuzz_streams_are_hashseed_independent():
    first = _run("1")
    second = _run("2")
    assert first == second, (
        "fuzz campaign output depends on PYTHONHASHSEED; "
        "divergences would not replay across machines"
    )
    payload = json.loads(first)
    assert len(payload["keys"]) == len(set(payload["keys"])) == 10
    assert payload["curve"][-1] == len(payload["features"])
