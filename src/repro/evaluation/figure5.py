"""Figure 5 reproduction: kernel speedups over Naive (fixed size).

For each of the 21 kernels, simulate every implementation -- Naive,
Naive (fixed size), Diospyros, Nature (where the library supports the
kernel), Eigen (where available) -- on identical random inputs, check
each against the trusted reference, and report speedups normalized to
Naive (fixed size), exactly as the paper's Figure 5 does.

The headline aggregate is the geometric-mean speedup of Diospyros over
the *best non-expert baseline* per kernel (the paper reports 3.1x).
The expert comparison (Section 5.4: 39 vs 36 cycles on MatMul
2x3*3x3, same 2-mul + 4-MAC op mix) is included for its one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import baseline_program
from ..kernels import table1_kernels
from ..kernels.base import Kernel
from .common import (
    Budget,
    DEFAULT_BUDGET,
    SweepError,
    compile_kernel_resilient,
    geomean,
    measure,
    render_sweep_errors,
    render_table,
)

__all__ = ["Figure5Row", "Figure5Result", "run_figure5", "render_figure5"]

#: Paper headline numbers for side-by-side reporting.
PAPER_GEOMEAN_SPEEDUP = 3.1
PAPER_EXPERT_CYCLES = 36
PAPER_DIOSPYROS_EXPERT_KERNEL_CYCLES = 39

_BASELINE_NAMES = ("naive", "naive-fixed", "nature", "eigen", "expert")


@dataclass
class Figure5Row:
    kernel: str
    category: str
    size: str
    cycles: Dict[str, Optional[float]] = field(default_factory=dict)
    correct: Dict[str, bool] = field(default_factory=dict)
    diospyros_timed_out: bool = False

    def speedup_over_fixed(self, name: str) -> Optional[float]:
        fixed = self.cycles.get("naive-fixed")
        value = self.cycles.get(name)
        if fixed is None or value is None or value == 0:
            return None
        return fixed / value

    def best_baseline_cycles(self) -> Optional[float]:
        """Cheapest non-expert baseline (paper's comparison point)."""
        candidates = [
            self.cycles[name]
            for name in ("naive", "naive-fixed", "nature", "eigen")
            if self.cycles.get(name) is not None
        ]
        return min(candidates) if candidates else None

    def diospyros_vs_best(self) -> Optional[float]:
        best = self.best_baseline_cycles()
        dio = self.cycles.get("diospyros")
        if best is None or dio is None or dio == 0:
            return None
        return best / dio


@dataclass
class Figure5Result:
    rows: List[Figure5Row]
    geomean_vs_best: float
    all_correct: bool
    #: Kernels whose compilation (or measurement) failed; the geomean
    #: is computed over the surviving rows.
    errors: List[SweepError] = field(default_factory=list)

    def row(self, kernel_name: str) -> Figure5Row:
        for row in self.rows:
            if row.kernel == kernel_name:
                return row
        raise KeyError(kernel_name)


def run_figure5(
    budget: Budget = DEFAULT_BUDGET,
    kernels: Optional[Sequence[Kernel]] = None,
    seed: int = 0,
    service=None,
    **overrides,
) -> Figure5Result:
    """Compile and measure every kernel and baseline.

    Per-kernel failures are recorded in ``result.errors`` and the sweep
    continues; the geomean aggregates over the survivors only.
    ``service`` routes compilations through the sandboxed worker pool
    and artifact cache (see :mod:`repro.service`).
    """
    rows: List[Figure5Row] = []
    errors: List[SweepError] = []
    all_correct = True
    for kernel in kernels if kernels is not None else table1_kernels():
        row = Figure5Row(kernel.name, kernel.category, kernel.size_label)

        result = compile_kernel_resilient(
            kernel, budget, errors=errors, service=service, **overrides
        )
        if result is None:
            continue
        row.diospyros_timed_out = result.timed_out
        cycles, ok = measure(result.program, kernel, seed)
        row.cycles["diospyros"] = cycles
        row.correct["diospyros"] = ok
        all_correct = all_correct and ok

        for name in _BASELINE_NAMES:
            program = baseline_program(name, kernel)
            if program is None:
                row.cycles[name] = None
                continue
            cycles, ok = measure(program, kernel, seed)
            row.cycles[name] = cycles
            row.correct[name] = ok
            all_correct = all_correct and ok
        rows.append(row)

    ratios = [r.diospyros_vs_best() for r in rows]
    ratios = [r for r in ratios if r is not None]
    return Figure5Result(
        rows=rows,
        geomean_vs_best=geomean(ratios) if ratios else float("nan"),
        all_correct=all_correct,
        errors=errors,
    )


def render_figure5(result: Figure5Result, budget: Budget = DEFAULT_BUDGET) -> str:
    headers = [
        "Kernel",
        "Naive",
        "NaiveFix",
        "Diospyros",
        "Nature",
        "Eigen",
        "Expert",
        "Dio speedup vs fixed",
        "Dio vs best",
        "TO",
    ]
    table_rows = []
    for r in result.rows:
        table_rows.append(
            [
                r.kernel,
                r.cycles.get("naive"),
                r.cycles.get("naive-fixed"),
                r.cycles.get("diospyros"),
                r.cycles.get("nature"),
                r.cycles.get("eigen"),
                r.cycles.get("expert"),
                r.speedup_over_fixed("diospyros"),
                r.diospyros_vs_best(),
                "yes" if r.diospyros_timed_out else "",
            ]
        )
    table = render_table(
        headers,
        table_rows,
        title=(
            f"Figure 5 reproduction: simulated cycles "
            f"(budget {budget.seconds:.0f}s ~ paper {budget.paper_seconds:.0f}s)"
        ),
    )
    survivors = (
        f" over {len(result.rows)} surviving kernel(s)" if result.errors else ""
    )
    lines = [
        table,
        "",
        f"Geomean Diospyros speedup over best non-expert baseline{survivors}: "
        f"{result.geomean_vs_best:.2f}x (paper: {PAPER_GEOMEAN_SPEEDUP}x)",
        f"All implementations matched the reference: {result.all_correct}",
    ]
    if result.errors:
        lines.append(render_sweep_errors(result.errors))
    try:
        expert_row = result.row("matmul-2x3-3x3")
        dio = expert_row.cycles.get("diospyros")
        exp = expert_row.cycles.get("expert")
        if dio is not None and exp is not None:
            gap = (dio - exp) / exp * 100
            lines.append(
                f"Expert comparison (MatMul 2x3*3x3): Diospyros {dio:.0f} vs "
                f"expert {exp:.0f} cycles ({gap:+.0f}%; paper: "
                f"{PAPER_DIOSPYROS_EXPERT_KERNEL_CYCLES} vs "
                f"{PAPER_EXPERT_CYCLES}, +8%)"
            )
    except KeyError:
        pass
    return "\n".join(lines)
