"""Observability configuration and the per-compile session.

Two layers, split so the sandboxed-worker path keeps working:

* :class:`Observability` -- a **frozen, picklable** configuration
  dataclass carried on :class:`repro.compiler.CompileOptions`.  It
  crosses the fork/pipe boundary with the task.
* :class:`ObservabilitySession` -- the **live** tracer / metrics
  registry / flight recorder built from the config inside whichever
  process runs the compile.  It is never pickled; its
  :meth:`~ObservabilitySession.export` produces the picklable
  :class:`ObservabilityData` that rides back on the
  ``CompileResult``, where a supervisor can re-parent the worker's
  spans into its own trace (:meth:`repro.observability.trace.Tracer.adopt`).

Instrumentation sites use the module-level :func:`span`, :func:`event`
and :func:`session_metrics` helpers, which consult a context variable
holding the active session.  When observability is off (the default)
the context variable is ``None`` and every helper is a single load +
``None`` check -- the pipeline constructs no tracer, no registry, no
recorder, and records nothing (asserted by
``tests/test_observability.py``).
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .metrics import (  # noqa: F401
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from .recorder import FlightRecorder
from .trace import Span, Tracer, to_chrome, to_json

__all__ = [
    "OBS_SCHEMA",
    "Observability",
    "ObservabilityData",
    "ObservabilitySession",
    "current_session",
    "activate",
    "span",
    "event",
]

OBS_SCHEMA = "repro_observability/v1"


@dataclass(frozen=True)
class Observability:
    """Observability switchboard, carried on ``CompileOptions``.

    ``enabled=False`` (the default) keeps the entire subsystem inert.
    The three component flags allow partial capture (e.g. recorder-only
    post-mortems on a production sweep where full tracing would be too
    chatty).
    """

    enabled: bool = False
    trace: bool = True
    metrics: bool = True
    recorder: bool = True
    #: Ring-buffer capacity of the flight recorder (last-N iterations).
    recorder_capacity: int = 128
    #: When set, every compile writes ``<trace_dir>/<kernel>.trace.json``
    #: (Chrome trace-event format) on completion -- the evaluation
    #: CLI's ``--trace-out`` plumbs into this.
    trace_dir: Optional[str] = None
    #: When set, a failed / timed-out / degraded compile writes
    #: ``<postmortem_dir>/<kernel>.postmortem.json`` (flight-recorder
    #: dump) even when the compile raises.
    postmortem_dir: Optional[str] = None

    @staticmethod
    def on(**overrides: Any) -> "Observability":
        """Shorthand for a fully-enabled configuration."""
        return Observability(enabled=True, **overrides)


@dataclass
class ObservabilityData:
    """Picklable export of one session (rides on ``CompileResult``)."""

    schema: str = OBS_SCHEMA
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    recorder: Dict[str, Any] = field(default_factory=dict)

    @property
    def prometheus(self) -> str:
        """Exposition text, rendered on demand from the JSON snapshot
        so the per-compile export path never pays for string assembly."""
        return render_prometheus(self.metrics)

    def chrome_trace(self) -> Dict[str, Any]:
        return to_chrome(self.spans)

    def trace_json(self) -> Dict[str, Any]:
        return to_json(self.spans)

    def span_named(self, name: str) -> Optional[Dict[str, Any]]:
        for s in self.spans:
            if s["name"] == name:
                return s
        return None


class ObservabilitySession:
    """Live tracer + metrics + recorder for one process."""

    def __init__(self, config: Optional[Observability] = None) -> None:
        self.config = config or Observability(enabled=True)
        self.tracer: Optional[Tracer] = (
            Tracer() if self.config.trace else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(self.config.recorder_capacity)
            if self.config.recorder
            else None
        )

    def export(self) -> ObservabilityData:
        return ObservabilityData(
            spans=self.tracer.export() if self.tracer else [],
            metrics=self.metrics.to_json() if self.metrics else {},
            recorder=self.recorder.dump() if self.recorder else {},
        )

    # -- convenience pass-throughs ------------------------------------

    def record_event(self, kind: str, **details: Any) -> None:
        if self.recorder is not None:
            self.recorder.record_event(kind, **details)
        if self.tracer is not None:
            self.tracer.event(kind, **details)


# ----------------------------------------------------------------------
# Ambient session (instrumentation sites)
# ----------------------------------------------------------------------

_ACTIVE: "contextvars.ContextVar[Optional[ObservabilitySession]]" = (
    contextvars.ContextVar("repro_observability_session", default=None)
)


def current_session() -> Optional[ObservabilitySession]:
    return _ACTIVE.get()


@contextmanager
def activate(session: Optional[ObservabilitySession]) -> Iterator[None]:
    """Make ``session`` the ambient session for the dynamic extent.
    ``activate(None)`` deactivates (used to assert the disabled path)."""
    token = _ACTIVE.set(session)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


class _NullHandle:
    """No-op span context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> Optional[Span]:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


def span(name: str, **attributes: Any):
    """Open a span on the ambient tracer (no-op when disabled).

    The returned context manager yields the live :class:`Span`, or
    ``None`` when observability is off -- guard attribute writes with
    ``if s is not None``.
    """
    session = _ACTIVE.get()
    if session is None or session.tracer is None:
        return _NULL_HANDLE
    return session.tracer.span(name, **attributes)


def event(kind: str, **details: Any) -> None:
    """Record a point event on the ambient session (trace + recorder)."""
    session = _ACTIVE.get()
    if session is not None:
        session.record_event(kind, **details)


def write_compile_artifacts(
    data: ObservabilityData,
    config: Observability,
    kernel: str,
    *,
    failed: bool,
) -> List[str]:
    """Write the per-compile artifact files the config asks for.

    Returns the paths written.  Never raises: artifact persistence must
    not turn a successful compile into a failure (write errors are
    reported as a recorder event in the returned data instead).
    """
    written: List[str] = []
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in kernel)
    try:
        if config.trace_dir:
            os.makedirs(config.trace_dir, exist_ok=True)
            path = os.path.join(config.trace_dir, f"{safe}.trace.json")
            _dump_json(path, data.chrome_trace())
            written.append(path)
        if config.postmortem_dir and failed and data.recorder:
            os.makedirs(config.postmortem_dir, exist_ok=True)
            path = os.path.join(
                config.postmortem_dir, f"{safe}.postmortem.json"
            )
            _dump_json(path, data.recorder)
            written.append(path)
    except OSError as exc:  # pragma: no cover - disk-full etc.
        data.recorder.setdefault("write_errors", []).append(str(exc))
    return written


def _dump_json(path: str, payload: Dict[str, Any]) -> None:
    import json

    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
