"""Delta-debugging shrinker: a seeded divergent kernel reduces to a
minimal repro that replays deterministically.

The divergence is injected with an intentionally unsound rewrite rule,
``(* ?a 2) -> ?a``: the right-hand side is strictly cheaper, so
extraction always prefers it and every kernel containing a doubled
subterm miscompiles -- a reliable, hermetic stand-in for a real
compiler bug.
"""

import json
import os

import pytest

from repro.compiler import CompileOptions
from repro.conformance.corpus import spec_key
from repro.conformance.replay import replay_repro
from repro.conformance.shrink import (
    divergence_predicate,
    repro_payload,
    shrink,
    spec_size,
    write_repro,
)
from repro.dsl.ast import Term, get, num
from repro.egraph.rewrite import rewrite
from repro.frontend.lift import ArrayDecl, Spec


def unsound_options() -> CompileOptions:
    bad = rewrite("unsound-mul2", "(* ?a 2)", "?a")
    return CompileOptions(
        time_limit=None,
        iter_limit=8,
        node_limit=4000,
        validate=False,
        track_memory=False,
        seed=0,
        extra_rules=(bad,),
    )


def ugly_spec() -> Spec:
    """Four outputs, two input arrays, one buried ``*2`` trigger."""
    a0, a1 = get("a", 0), get("a", 1)
    b0, b2 = get("b", 0), get("b", 2)
    elements = (
        Term("+", (a0, b0)),
        Term("*", (Term("+", (a1, num(1.0))), b2)),
        Term("-", (Term("*", (a1, num(2.0))), b0)),
        Term("*", (b2, num(0.5))),
    )
    return Spec(
        name="ugly-seeded-divergence",
        inputs=(ArrayDecl("a", 2), ArrayDecl("b", 3)),
        outputs=(ArrayDecl("out", len(elements)),),
        term=Term("List", elements),
    )


@pytest.fixture(scope="module")
def shrunk():
    options = unsound_options()
    predicate = divergence_predicate(options, seed=0)
    spec = ugly_spec()
    assert predicate(spec), "seeded divergence did not fire"
    return spec, options, predicate, shrink(spec, predicate)


def test_shrinker_reduces_to_minimal_repro(shrunk):
    spec, _, predicate, report = shrunk
    assert report.reduced
    assert report.minimized_size < report.original_size
    assert report.minimized_size <= 10, (
        f"minimal repro still large: {report.minimized.term.to_sexpr()}"
    )
    # The minimized kernel must still trigger the bug, and must keep
    # the *2 that the unsound rule rewrites.
    assert predicate(report.minimized)
    assert "*" in report.minimized.term.to_sexpr()


def test_shrinking_is_deterministic(shrunk):
    spec, _, predicate, report = shrunk
    again = shrink(spec, predicate)
    assert spec_key(again.minimized) == spec_key(report.minimized)
    assert again.steps == report.steps
    assert again.attempts == report.attempts


def test_minimal_repro_replays_deterministically(shrunk):
    _, options, _, report = shrunk
    payload = repro_payload(report.minimized, options, seed=0)
    # The divergence depends on the injected rule, which is not JSON
    # state -- replay with the live options object.
    first = replay_repro(payload, options=options)
    second = replay_repro(payload, options=options)
    assert not first.ok and not second.ok
    assert [str(d) for d in first.divergences] == [
        str(d) for d in second.divergences
    ]
    # Under the serialized (sound) options the divergence is gone: the
    # generated test goes green once the bug is fixed.
    clean = replay_repro(payload)
    assert clean.ok


def test_write_repro_emits_replayable_pytest_case(shrunk, tmp_path):
    _, options, _, report = shrunk
    payload = repro_payload(
        report.minimized, options, seed=0, note="seeded by unsound-mul2"
    )
    json_path, test_path = write_repro(payload, directory=str(tmp_path))
    assert os.path.exists(json_path) and os.path.exists(test_path)
    on_disk = json.load(open(json_path))
    assert on_disk == payload
    body = open(test_path).read()
    assert f"def test_repro_{payload['key']}()" in body
    assert "replay_repro" in body


def test_shrink_rejects_non_divergent_input():
    options = unsound_options()
    predicate = divergence_predicate(options, seed=0)
    benign = Spec(
        name="benign",
        inputs=(ArrayDecl("a", 2),),
        outputs=(ArrayDecl("out", 1),),
        term=Term("List", (get("a", 0),)),
    )
    assert spec_size(benign) > 0
    with pytest.raises(ValueError):
        shrink(benign, predicate)
