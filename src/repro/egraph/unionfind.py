"""Union-find (disjoint set) over dense integer ids.

This is the substrate of the e-graph: every e-class is a set of
congruent e-nodes, and merging two classes is a union operation.  The
implementation uses path halving and union by size, giving effectively
amortized-constant operations; ids are allocated densely by
:meth:`UnionFind.make_set`, matching how the e-graph mints e-class ids.
"""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over ``int`` ids ``0..n-1``."""

    __slots__ = ("_parent", "_size")

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def __len__(self) -> int:
        """Total number of ids ever created (not the number of sets)."""
        return len(self._parent)

    def copy(self) -> "UnionFind":
        """An independent snapshot (used by e-graph checkpointing)."""
        new = UnionFind()
        new._parent = list(self._parent)
        new._size = list(self._size)
        return new

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        return new_id

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s set."""
        parent = self._parent
        root = x
        while parent[root] != root:
            # Path halving: point every other node at its grandparent.
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving root.

        Union by size keeps find paths short.  When the two ids are
        already in the same set this is a no-op returning the shared
        root.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def in_same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def num_sets(self) -> int:
        """Number of distinct sets (linear scan; for tests/stats only)."""
        return sum(1 for i, p in enumerate(self._parent) if i == self.find(i))
