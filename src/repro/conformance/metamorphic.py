"""Metamorphic testing: semantics-preserving transforms as oracles.

Differential fuzzing needs a reference interpreter; metamorphic
testing needs only the compiler itself.  Each transform rewrites a
kernel into one that must be observably related to the original --
same outputs up to a lane mapping -- and the pair of *compiled*
results is checked against that relation on random inputs.  A
violation indicts the compiler without any ground-truth executor in
the loop, which catches bug classes the differential oracle shares
with the interpreter (e.g. a common mis-reading of DSL semantics).

Transforms also carry a **cost relation**, checked only when both
compilations saturated (on a partially explored e-graph extraction
costs are budget artifacts, not statements about the optimizer):

* ``lane-permutation`` -- permuting output lanes; costs may legally
  move either way (chunking changes), so no relation is asserted.
* ``zero-padding`` -- appending constant-zero lanes can only add work:
  cost must not *decrease*.
* ``affine-wrap`` -- wrapping every lane in ``(+ (* e 1) 0)`` is pure
  fat the identity rules strip at saturation; since the saturated
  e-graph of the wrapped kernel contains every representation of the
  original, its extracted cost must not *increase*.
* ``fold-inverse`` -- wrapping in ``(/ (* e 2) 2)``: no cancellation
  rule exists (sound float semantics), so the wrapper survives and
  cost must not decrease.

All randomness (lane permutations, check inputs) derives from
:mod:`repro.seeding` keyed on kernel content, so every outcome replays
byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..compiler import CompileOptions, CompileResult, compile_spec
from ..dsl.ast import Term, num
from ..frontend.lift import Spec, random_inputs
from ..machine import simulate
from ..seeding import stable_rng
from .corpus import spec_key
from .mutate import rebuild_spec

__all__ = [
    "Transform",
    "MetamorphicOutcome",
    "default_transforms",
    "check_spec",
    "run_metamorphic",
    "render_outcomes",
]

#: transformed lane index -> original lane index, or None when the
#: lane was introduced by the transform and must read exactly 0.0.
LaneMap = List[Optional[int]]


@dataclass(frozen=True)
class Transform:
    """One metamorphic relation."""

    name: str
    #: "le" / "ge" / "any": required relation of cost(transformed) to
    #: cost(original) when both compilations saturated.
    cost_relation: str
    apply: Callable[[Spec, int], Tuple[Spec, LaneMap]]


def _elements(spec: Spec) -> List[Term]:
    return list(spec.term.args)


def _lane_permutation(spec: Spec, seed: int) -> Tuple[Spec, LaneMap]:
    elements = _elements(spec)
    order = list(range(len(elements)))
    stable_rng(seed, "meta-perm", spec_key(spec)).shuffle(order)
    permuted = [elements[j] for j in order]
    return (
        rebuild_spec(f"{spec.name}-perm", spec.inputs, permuted),
        list(order),
    )


def _zero_padding(spec: Spec, seed: int, pad: int = 2) -> Tuple[Spec, LaneMap]:
    elements = _elements(spec) + [num(0.0)] * pad
    lane_map: LaneMap = list(range(len(elements) - pad)) + [None] * pad
    return (
        rebuild_spec(f"{spec.name}-pad", spec.inputs, elements),
        lane_map,
    )


def _affine_wrap(spec: Spec, seed: int) -> Tuple[Spec, LaneMap]:
    elements = [
        Term("+", (Term("*", (e, num(1.0))), num(0.0)))
        for e in _elements(spec)
    ]
    return (
        rebuild_spec(f"{spec.name}-affine", spec.inputs, elements),
        list(range(len(elements))),
    )


def _fold_inverse(spec: Spec, seed: int) -> Tuple[Spec, LaneMap]:
    elements = [
        Term("/", (Term("*", (e, num(2.0))), num(2.0)))
        for e in _elements(spec)
    ]
    return (
        rebuild_spec(f"{spec.name}-foldinv", spec.inputs, elements),
        list(range(len(elements))),
    )


def default_transforms() -> List[Transform]:
    return [
        Transform("lane-permutation", "any", _lane_permutation),
        Transform("zero-padding", "ge", _zero_padding),
        Transform("affine-wrap", "le", _affine_wrap),
        Transform("fold-inverse", "ge", _fold_inverse),
    ]


@dataclass
class MetamorphicOutcome:
    """One (kernel, transform) verdict."""

    kernel: str
    transform: str
    trials: int = 0
    #: Output-equivalence violations, rendered for humans.
    mismatches: List[str] = field(default_factory=list)
    compile_error: str = ""
    cost_original: float = 0.0
    cost_transformed: float = 0.0
    #: Whether the cost relation was actually asserted (both saturated
    #: and the transform declares a direction) -- a skipped check is
    #: reported, never silently dropped.
    cost_checked: bool = False
    cost_ok: bool = True

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.compile_error and self.cost_ok


def _saturated(result: CompileResult) -> bool:
    return result.report.saturated


def check_spec(
    spec: Spec,
    transform: Transform,
    options: CompileOptions,
    seed: int = 0,
    trials: int = 3,
    tolerance: float = 1e-5,
) -> MetamorphicOutcome:
    """Compile ``spec`` and its transform, then check lane equivalence
    on shared random inputs and the declared cost relation."""
    outcome = MetamorphicOutcome(kernel=spec.name, transform=transform.name)
    transformed, lane_map = transform.apply(spec, seed)
    try:
        original = compile_spec(spec, options)
        variant = compile_spec(transformed, options)
    except Exception as exc:  # noqa: BLE001 - verdict, not crash
        outcome.compile_error = f"{type(exc).__name__}: {exc}"
        return outcome

    rng = stable_rng(seed, "meta-inputs", transform.name, spec_key(spec))
    n = spec.n_outputs
    for trial in range(trials):
        env = random_inputs(spec, rng)
        base = simulate(original.program, env).output("out")[:n]
        got = simulate(variant.program, env).output("out")[: len(lane_map)]
        outcome.trials += 1
        for lane, source in enumerate(lane_map):
            want = 0.0 if source is None else base[source]
            actual = got[lane]
            scale = max(1.0, abs(want))
            if abs(want - actual) > tolerance * scale + 1e-9:
                outcome.mismatches.append(
                    f"trial {trial} lane {lane}: expected {want!r} "
                    f"(original lane {source}), got {actual!r}"
                )

    outcome.cost_original = original.cost
    outcome.cost_transformed = variant.cost
    if transform.cost_relation != "any" and _saturated(original) and _saturated(variant):
        outcome.cost_checked = True
        slack = 1e-6 * max(1.0, abs(original.cost))
        if transform.cost_relation == "ge":
            outcome.cost_ok = variant.cost >= original.cost - slack
        elif transform.cost_relation == "le":
            outcome.cost_ok = variant.cost <= original.cost + slack
        else:
            raise ValueError(
                f"unknown cost relation: {transform.cost_relation!r}"
            )
    return outcome


def run_metamorphic(
    specs: Sequence[Spec],
    options: CompileOptions,
    transforms: Optional[Sequence[Transform]] = None,
    seed: int = 0,
    trials: int = 3,
    tolerance: float = 1e-5,
) -> List[MetamorphicOutcome]:
    transforms = list(transforms or default_transforms())
    return [
        check_spec(spec, transform, options, seed, trials, tolerance)
        for spec in specs
        for transform in transforms
    ]


def render_outcomes(outcomes: Sequence[MetamorphicOutcome]) -> str:
    failed = [o for o in outcomes if not o.ok]
    cost_checked = sum(1 for o in outcomes if o.cost_checked)
    lines = [
        f"metamorphic: {len(outcomes)} checks "
        f"({cost_checked} with cost relation asserted), "
        f"{len(failed)} failed"
    ]
    for o in outcomes:
        status = "ok" if o.ok else "FAIL"
        lines.append(
            f"  [{status}] {o.kernel} x {o.transform}: "
            f"cost {o.cost_original:.1f} -> {o.cost_transformed:.1f}"
            + ("" if o.cost_checked else " (cost relation skipped)")
        )
        if o.compile_error:
            lines.append(f"        compile error: {o.compile_error}")
        lines.extend(f"        {m}" for m in o.mismatches)
        if not o.cost_ok:
            lines.append("        cost relation violated")
    lines.append("VERDICT: " + ("OK" if not failed else "METAMORPHIC FAILURE"))
    return "\n".join(lines)
