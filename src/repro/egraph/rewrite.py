"""Rewrite rules: syntactic and custom (searcher/applier pairs).

egg structures a rewrite as a *searcher* that finds places the rule can
fire plus an *applier* that adds the right-hand side and unions it with
the matched class (paper Section 3.3).  We mirror that split:

* :class:`SyntacticRewrite` -- both sides are patterns; covers the
  scalar simplification rules and simple vector identities.
* :class:`CustomRewrite` -- the searcher is arbitrary Python producing
  :class:`Match` objects whose ``build`` callback constructs the RHS
  directly in the e-graph.  Diospyros's per-lane vectorization rules
  (zero-aware binary ops, the multiply–accumulate matcher of
  Section 3.3) need this generality: their left-hand sides cannot be
  expressed as a single pattern without enumerating every permutation
  of zero lanes.

Rules may carry a *guard* predicate over the substitution, used for
conditional rewrites (e.g. ``(/ ?a ?a) => 1`` only when ``?a`` is known
non-zero is *not* sound in general, so we simply do not ship that rule;
guards are still useful for things like "only fire on vectors of
machine width").

Rules additionally carry a frozenset of *tags* ("scalar", "vectorize",
"mac", ...).  Tags are how the phase planner (``repro.phases``) names
rule subsets declaratively: a phase lists the tags it wants and the
ruleset builder keeps only rules whose tag set intersects it.  Untagged
rules are considered phase-neutral and survive every filter.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from .egraph import EGraph
from .pattern import (
    MatchCounters,
    Pattern,
    Subst,
    ematch,
    instantiate,
    pattern,
    pattern_vars,
)
from .scheduler import Deadline

__all__ = [
    "Match",
    "Rewrite",
    "SearchContext",
    "SyntacticRewrite",
    "CustomRewrite",
    "rewrite",
    "birewrite",
]


@dataclass
class Match:
    """One place a rule can fire.

    ``eclass`` is the matched class; ``build`` adds the replacement to
    the e-graph and returns its class id, which the runner unions with
    ``eclass``.  Keeping construction in a callback means searching
    never mutates the graph -- all rules in an iteration search the same
    frozen graph, eliminating rule-order bias (the phase-ordering
    problem the paper sets out to avoid).

    ``dedup_key`` optionally identifies the match's *effect*: two
    matches of one rule with equal keys build the same RHS and union it
    with the same class.  The runner keeps a seen-set of applied keys
    so a saturated rule stops paying apply+union cost for no-op
    rebuilds.  Non-negative ints in the key are treated as e-class ids
    and canonicalized before comparison; anything else is compared
    verbatim.  ``None`` disables deduplication for the match.
    """

    eclass: int
    build: Callable[[EGraph], Optional[int]]
    rule_name: str = ""
    dedup_key: Optional[Tuple] = None


@dataclass
class SearchContext:
    """Everything a searcher may consult while searching.

    * ``since`` -- e-graph tick high-water mark: only classes whose
      subtree changed after it can yield *new* matches (``None`` means
      scan everything).
    * ``deadline`` -- cooperative wall-clock budget.
    * ``counters`` -- visited/skipped/completed instrumentation; a
      searcher that honours ``since`` should route its candidate
      enumeration through :meth:`EGraph.classes_with_op`/
      :meth:`EGraph.dirty_class_ids` (which credit the counters), and
      clear ``counters.completed`` when it stops early on deadline.
    """

    since: Optional[int] = None
    deadline: Optional[Deadline] = None
    counters: MatchCounters = field(default_factory=MatchCounters)


class Rewrite:
    """Base class: a named source of matches.

    ``search`` takes an optional cooperative :class:`Deadline`: a
    searcher should poll it periodically and return the matches found
    so far once it expires, so one explosive rule cannot blow past the
    runner's wall-clock budget (the runner previously only checked time
    *between* rules).  Honouring the deadline is best-effort -- a
    searcher that ignores it is still correct, just less responsive.
    """

    def __init__(self, name: str, tags: Iterable[str] = ()) -> None:
        self.name = name
        #: Phase-planner labels.  Empty means "phase-neutral": the rule
        #: is included no matter which tag subset a phase asks for.
        self.tags = frozenset(tags)

    def has_any_tag(self, wanted: Iterable[str]) -> bool:
        """True when this rule belongs to a phase selecting ``wanted``.

        Untagged rules belong to every phase (they are extension rules
        the planner knows nothing about; dropping them silently would
        change semantics behind the user's back)."""
        if not self.tags:
            return True
        return bool(self.tags.intersection(wanted))

    def search(
        self,
        egraph: EGraph,
        deadline: Optional[Deadline] = None,
        since: Optional[int] = None,
        counters: Optional[MatchCounters] = None,
    ) -> List[Match]:
        """Find matches.  ``since``/``counters`` enable dirty-set
        incremental searching (see :class:`SearchContext`); honouring
        them is best-effort -- a searcher that ignores ``since`` simply
        re-reports old matches, which the runner deduplicates."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SyntacticRewrite(Rewrite):
    """``lhs => rhs`` where both sides are patterns.

    Every variable on the right must be bound on the left.  An optional
    ``guard(egraph, subst)`` can veto individual matches.
    """

    def __init__(
        self,
        name: str,
        lhs: Union[str, Pattern],
        rhs: Union[str, Pattern],
        guard: Optional[Callable[[EGraph, Subst], bool]] = None,
        tags: Iterable[str] = (),
    ) -> None:
        super().__init__(name, tags)
        self.lhs = pattern(lhs)
        self.rhs = pattern(rhs)
        self.guard = guard
        missing = set(pattern_vars(self.rhs)) - set(pattern_vars(self.lhs))
        if missing:
            raise ValueError(
                f"rewrite {name!r}: RHS variables {sorted(missing)} unbound by LHS"
            )

    def search(
        self,
        egraph: EGraph,
        deadline: Optional[Deadline] = None,
        since: Optional[int] = None,
        counters: Optional[MatchCounters] = None,
    ) -> List[Match]:
        matches: List[Match] = []
        found = ematch(
            egraph, self.lhs, deadline=deadline, since=since, counters=counters
        )
        for eclass_id, subst in found:
            if self.guard is not None and not self.guard(egraph, subst):
                continue
            rhs = self.rhs

            def build(eg: EGraph, _subst: Subst = subst, _rhs: Pattern = rhs) -> int:
                return instantiate(eg, _rhs, _subst)

            key = (eclass_id,) + tuple(sorted(subst.items()))
            matches.append(Match(eclass_id, build, self.name, dedup_key=key))
        return matches


class CustomRewrite(Rewrite):
    """A rule whose searcher is an arbitrary function of the e-graph.

    ``searcher(egraph)`` returns an iterable of :class:`Match`.  This is
    the hook the vectorization rules use (paper Section 3.3's "custom
    searchers and appliers").

    Searchers declared with a second parameter -- ``searcher(egraph,
    ctx)`` -- receive a :class:`SearchContext` and may use its
    ``since`` cutoff to scan only dirtied classes.  One-parameter
    searchers are always given the whole graph (they simply re-report
    old matches, which the runner deduplicates), so existing custom
    rules keep working unchanged.
    """

    def __init__(
        self,
        name: str,
        searcher: Callable[..., Iterable[Match]],
        tags: Iterable[str] = (),
    ) -> None:
        super().__init__(name, tags)
        self._searcher = searcher
        self._takes_context = self._accepts_context(searcher)

    @staticmethod
    def _accepts_context(searcher: Callable) -> bool:
        try:
            params = list(inspect.signature(searcher).parameters.values())
        except (TypeError, ValueError):  # builtins / exotic callables
            return False
        positional = [
            p
            for p in params
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
        ]
        if any(p.kind == p.VAR_POSITIONAL for p in positional):
            return True
        return len(positional) >= 2

    def search(
        self,
        egraph: EGraph,
        deadline: Optional[Deadline] = None,
        since: Optional[int] = None,
        counters: Optional[MatchCounters] = None,
    ) -> List[Match]:
        counters = counters if counters is not None else MatchCounters()
        if self._takes_context:
            ctx = SearchContext(since=since, deadline=deadline, counters=counters)
            produced = self._searcher(egraph, ctx)
        else:
            produced = self._searcher(egraph)
        matches: List[Match] = []
        # The searcher is arbitrary user code; polling the deadline
        # between yielded matches lets even generator-style searchers
        # cooperate without knowing about deadlines themselves.
        check_every = 16
        for i, m in enumerate(produced):
            m.rule_name = m.rule_name or self.name
            matches.append(m)
            if deadline is not None and i % check_every == 0 and deadline.expired():
                # Truncated: the cursor must not advance past the
                # unseen candidates.
                counters.completed = False
                break
        return matches


def rewrite(
    name: str,
    lhs: Union[str, Pattern],
    rhs: Union[str, Pattern],
    guard: Optional[Callable[[EGraph, Subst], bool]] = None,
    tags: Iterable[str] = (),
) -> SyntacticRewrite:
    """Convenience constructor for a one-directional syntactic rule."""
    return SyntacticRewrite(name, lhs, rhs, guard, tags=tags)


def birewrite(
    name: str,
    lhs: Union[str, Pattern],
    rhs: Union[str, Pattern],
    tags: Iterable[str] = (),
) -> List[SyntacticRewrite]:
    """A bidirectional rule ``lhs <=> rhs`` (two one-directional rules).

    The paper writes these with a double-headed arrow, e.g. the fused
    multiply–accumulate rule ``(VecAdd a (VecMul b c)) <=> (VecMAC a b c)``.
    """
    return [
        SyntacticRewrite(name, lhs, rhs, tags=tags),
        SyntacticRewrite(name + "-rev", rhs, lhs, tags=tags),
    ]
