"""Cycle-level simulator for the vector IR.

This is our stand-in for Tensilica's ``xt-run`` (paper Section 5.2): a
deterministic interpreter over :class:`repro.backend.vir.Program` that
both *executes* the kernel on concrete data (so every benchmark is also
a correctness test) and *accounts cycles* using the machine's cost
table, with an ideal unit-delay memory exactly like the paper's
simulator configuration.

Simulation is deterministic -- identical inputs give identical outputs
and identical cycle counts -- so, like the paper, we report a single
execution per configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..backend import vir
from .config import MachineConfig, fusion_g3

__all__ = ["SimulationResult", "Simulator", "simulate"]


class SimulationError(RuntimeError):
    """Raised on malformed programs or runaway execution."""


@dataclass
class SimulationResult:
    """Outcome of one kernel execution."""

    outputs: Dict[str, List[float]]
    cycles: float
    instructions: int
    #: Cycles attributed per opcode -- used by the case-study profile
    #: (the paper's "61% of run time in QR" style breakdowns).
    cycle_breakdown: Dict[str, float] = field(default_factory=dict)

    def output(self, name: str) -> List[float]:
        return self.outputs[name]


class Simulator:
    """Executes IR programs under a :class:`MachineConfig`."""

    def __init__(self, machine: Optional[MachineConfig] = None) -> None:
        self.machine = machine or fusion_g3()

    def run(
        self,
        program: vir.Program,
        inputs: Mapping[str, Sequence[float]],
    ) -> SimulationResult:
        """Execute ``program`` on ``inputs``; outputs start zeroed."""
        program.validate_labels()
        memory: Dict[str, List[float]] = {}
        for name, length in program.inputs.items():
            data = list(inputs[name])
            if len(data) > length:
                raise SimulationError(
                    f"input {name!r}: expected at most {length} values, "
                    f"got {len(data)}"
                )
            # Shorter inputs are zero-padded: kernels declare padded
            # (vector-width-aligned) buffers, the DSP convention.
            memory[name] = [float(x) for x in data] + [0.0] * (length - len(data))
        for name, length in program.outputs.items():
            if name in memory:
                raise SimulationError(f"array {name!r} is both input and output")
            memory[name] = [0.0] * length

        labels = {
            instr.name: pc
            for pc, instr in enumerate(program.instructions)
            if isinstance(instr, vir.Label)
        }

        sregs: Dict[str, float] = {}
        vregs: Dict[str, List[float]] = {}
        width = program.vector_width

        cycles = 0.0
        executed = 0
        breakdown: Dict[str, float] = {}
        pc = 0
        code = program.instructions
        machine = self.machine

        while pc < len(code):
            instr = code[pc]
            executed += 1
            if executed > machine.max_instructions:
                raise SimulationError(
                    f"instruction limit exceeded in {program.name!r}; "
                    "non-terminating loop?"
                )
            cost = machine.cost(instr.opcode)
            pc, extra = self._step(
                instr, pc, labels, memory, sregs, vregs, width
            )
            cost += extra
            cycles += cost
            breakdown[instr.opcode] = breakdown.get(instr.opcode, 0.0) + cost

        return SimulationResult(
            outputs={name: memory[name] for name in program.outputs},
            cycles=cycles,
            instructions=executed,
            cycle_breakdown=breakdown,
        )

    # ------------------------------------------------------------------

    def _step(self, instr, pc, labels, memory, sregs, vregs, width):
        """Execute one instruction; return (next pc, extra cycles)."""
        extra = 0.0
        kind = type(instr)

        if kind is vir.SConst:
            sregs[instr.dst] = float(instr.value)
        elif kind is vir.SMove:
            sregs[instr.dst] = _sreg(sregs, instr.src)
        elif kind is vir.SBin:
            sregs[instr.dst] = _scalar_bin(
                instr.op, _sreg(sregs, instr.a), _sreg(sregs, instr.b)
            )
        elif kind is vir.SUn:
            sregs[instr.dst] = _scalar_un(instr.op, _sreg(sregs, instr.a))
        elif kind is vir.SLoad:
            sregs[instr.dst] = _mem(memory, instr.array)[instr.offset]
        elif kind is vir.SLoadIdx:
            addr = int(_sreg(sregs, instr.idx)) + instr.offset
            sregs[instr.dst] = _mem(memory, instr.array)[addr]
        elif kind is vir.SStore:
            _mem(memory, instr.array)[instr.offset] = _sreg(sregs, instr.src)
        elif kind is vir.SStoreIdx:
            addr = int(_sreg(sregs, instr.idx)) + instr.offset
            _mem(memory, instr.array)[addr] = _sreg(sregs, instr.src)

        elif kind is vir.VConst:
            if len(instr.values) != width:
                raise SimulationError(f"vconst with {len(instr.values)} lanes")
            vregs[instr.dst] = [float(x) for x in instr.values]
        elif kind is vir.VLoad:
            array = _mem(memory, instr.array)
            if instr.offset < 0 or instr.offset + width > len(array):
                raise SimulationError(
                    f"vload out of range: {instr.array}[{instr.offset}"
                    f"..{instr.offset + width})"
                )
            vregs[instr.dst] = array[instr.offset : instr.offset + width]
        elif kind is vir.VLoadIdx:
            array = _mem(memory, instr.array)
            base = int(_sreg(sregs, instr.idx)) + instr.offset
            if base < 0 or base + width > len(array):
                raise SimulationError(
                    f"vload.idx out of range: {instr.array}[{base}..{base + width})"
                )
            vregs[instr.dst] = array[base : base + width]
        elif kind is vir.VStore:
            array = _mem(memory, instr.array)
            values = _vreg(vregs, instr.src)
            if instr.count < 1 or instr.count > width:
                raise SimulationError(f"vstore count {instr.count} out of range")
            if instr.offset < 0 or instr.offset + instr.count > len(array):
                raise SimulationError(
                    f"vstore out of range: {instr.array}[{instr.offset}"
                    f"..{instr.offset + instr.count})"
                )
            array[instr.offset : instr.offset + instr.count] = values[: instr.count]
        elif kind is vir.VStoreIdx:
            array = _mem(memory, instr.array)
            base = int(_sreg(sregs, instr.idx)) + instr.offset
            values = _vreg(vregs, instr.src)
            if base < 0 or base + instr.count > len(array):
                raise SimulationError(
                    f"vstore.idx out of range: {instr.array}[{base}"
                    f"..{base + instr.count})"
                )
            array[base : base + instr.count] = values[: instr.count]
        elif kind is vir.VShuffle:
            src = _vreg(vregs, instr.src)
            _check_indices(instr.indices, width, width)
            vregs[instr.dst] = [src[i] for i in instr.indices]
        elif kind is vir.VSelect:
            combined = _vreg(vregs, instr.a) + _vreg(vregs, instr.b)
            _check_indices(instr.indices, 2 * width, width)
            vregs[instr.dst] = [combined[i] for i in instr.indices]
        elif kind is vir.VBin:
            a = _vreg(vregs, instr.a)
            b = _vreg(vregs, instr.b)
            vregs[instr.dst] = [_scalar_bin(instr.op, x, y) for x, y in zip(a, b)]
        elif kind is vir.VUn:
            vregs[instr.dst] = [
                _scalar_un(instr.op, x) for x in _vreg(vregs, instr.a)
            ]
        elif kind is vir.VMac:
            acc = _vreg(vregs, instr.acc)
            a = _vreg(vregs, instr.a)
            b = _vreg(vregs, instr.b)
            vregs[instr.dst] = [c + x * y for c, x, y in zip(acc, a, b)]
        elif kind is vir.VInsert:
            values = list(_vreg(vregs, instr.src))
            if not 0 <= instr.lane < width:
                raise SimulationError(f"vinsert lane {instr.lane} out of range")
            values[instr.lane] = _sreg(sregs, instr.scalar)
            vregs[instr.dst] = values
        elif kind is vir.VSplat:
            vregs[instr.dst] = [_sreg(sregs, instr.scalar)] * width

        elif kind is vir.Label:
            pass
        elif kind is vir.Jump:
            return labels[instr.target], 0.0
        elif kind is vir.Branch:
            taken = _compare(
                instr.cond, _sreg(sregs, instr.a), _sreg(sregs, instr.b)
            )
            if taken:
                return labels[instr.target], self.machine.branch_taken_penalty
        else:
            raise SimulationError(f"unknown instruction {instr!r}")

        return pc + 1, extra


def _mem(memory: Dict[str, List[float]], name: str) -> List[float]:
    try:
        return memory[name]
    except KeyError as exc:
        raise SimulationError(f"unknown array {name!r}") from exc


def _sreg(sregs: Dict[str, float], name: str) -> float:
    try:
        return sregs[name]
    except KeyError as exc:
        raise SimulationError(f"read of undefined scalar register {name!r}") from exc


def _vreg(vregs: Dict[str, List[float]], name: str) -> List[float]:
    try:
        return vregs[name]
    except KeyError as exc:
        raise SimulationError(f"read of undefined vector register {name!r}") from exc


def _check_indices(indices, limit: int, width: int) -> None:
    if len(indices) != width:
        raise SimulationError(f"index vector has {len(indices)} lanes, need {width}")
    for i in indices:
        if not 0 <= i < limit:
            raise SimulationError(f"shuffle index {i} out of range 0..{limit - 1}")


def _scalar_bin(op: str, a: float, b: float) -> float:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a / b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise SimulationError(f"unknown binary op {op!r}")


def _scalar_un(op: str, a: float) -> float:
    if op == "neg":
        return -a
    if op == "sqrt":
        if a < 0:
            raise SimulationError(f"sqrt of negative value {a}")
        return math.sqrt(a)
    if op == "sgn":
        return 1.0 if a > 0 else (-1.0 if a < 0 else 0.0)
    raise SimulationError(f"unknown unary op {op!r}")


def _compare(cond: str, a: float, b: float) -> bool:
    if cond == "lt":
        return a < b
    if cond == "le":
        return a <= b
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    if cond == "ge":
        return a >= b
    if cond == "gt":
        return a > b
    raise SimulationError(f"unknown condition {cond!r}")


def simulate(
    program: vir.Program,
    inputs: Mapping[str, Sequence[float]],
    machine: Optional[MachineConfig] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate one program on one machine."""
    return Simulator(machine).run(program, inputs)
