"""Command-line interface for single-kernel and service workflows.

Examples::

    repro list
    repro compile matmul-2x3-3x3 --budget 10
    repro compile 2dconv-3x5-3x3 --emit-c conv.c
    repro run matmul-2x3-3x3 --impl nature
    repro serve --kernels matmul --jobs 4 --cache-dir .repro-cache
    repro fuzz --count 200 --seed 1 --smoke
    repro chaos --seed 0 --report chaos.json
    repro cache stats --dir .repro-cache
    repro cache fsck --dir .repro-cache --repair

(``repro`` is the installed console script; ``python -m repro`` works
identically without installation.  The evaluation harness has its own
CLI: ``python -m repro.evaluation``.)
"""

from __future__ import annotations

import argparse
import sys

from .baselines import BASELINES, baseline_program
from .compiler import CompileOptions, compile_spec
from .kernels import get_kernel, table1_kernels
from .machine import simulate


def _cmd_list(_args) -> int:
    print(f"{'name':<24}{'category':<10}{'size':<16}{'outputs':>8}")
    for kernel in table1_kernels():
        print(
            f"{kernel.name:<24}{kernel.category:<10}{kernel.size_label:<16}"
            f"{kernel.n_outputs:>8}"
        )
    return 0


def _cmd_compile(args) -> int:
    kernel = get_kernel(args.kernel)
    phase_plan = None
    if args.phase_plan:
        from .phases import load_plan_file

        phase_plan = load_plan_file(args.phase_plan)
    options = CompileOptions(
        time_limit=args.budget,
        node_limit=args.node_limit,
        validate=not args.no_validate,
        vector_width=args.width,
        select_best_candidate=args.select_best,
        phases=args.phases,
        phase_plan=phase_plan,
    )
    result = compile_spec(kernel.spec(), options)
    print(result.summary())
    if result.phases is not None:
        print(f"phases: {result.phases.summary()}")
    if result.validation is not None:
        verdict = "PASSED" if result.validated else "FAILED"
        print(f"translation validation: {verdict} ({result.validation.methods_used})")
    print(f"saturation: {result.report.summary()}")
    print(f"IR opcode histogram: {result.program.opcode_histogram()}")
    if args.emit_c:
        with open(args.emit_c, "w") as handle:
            handle.write(result.c_code)
        print(f"wrote C intrinsics to {args.emit_c}")
    elif args.show_c:
        print(result.c_code)
    return 0 if (result.validation is None or result.validated) else 1


def _cmd_run(args) -> int:
    kernel = get_kernel(args.kernel)
    if args.impl == "diospyros":
        options = CompileOptions(
            time_limit=args.budget, node_limit=args.node_limit, validate=False
        )
        program = compile_spec(kernel.spec(), options).program
    else:
        program = baseline_program(args.impl, kernel)
        if program is None:
            print(f"{args.impl} does not provide {kernel.name}", file=sys.stderr)
            return 2
    inputs = kernel.random_inputs(args.seed)
    result = simulate(program, inputs)
    reference = kernel.reference_outputs(inputs)
    produced = result.output("out")[: len(reference)]
    correct = all(
        abs(a - b) <= 1e-4 * max(1.0, abs(b)) for a, b in zip(produced, reference)
    )
    print(f"{kernel.name} [{args.impl}]: {result.cycles:.0f} cycles, "
          f"{result.instructions} instructions, correct={correct}")
    return 0 if correct else 1


def _make_service(args):
    from .service import ArtifactCache, CompileService, FaultInjection

    inject_for = {}
    for entry in getattr(args, "inject", None) or ():
        # KERNEL:MODE[:ATTEMPTS] -- e.g. "matmul-2x2-2x2:sigkill:0,1"
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(f"bad --inject spec {entry!r} (KERNEL:MODE[:ATTEMPTS])")
        attempts = (
            tuple(int(a) for a in parts[2].split(",")) if len(parts) == 3 else (0,)
        )
        inject_for[parts[0]] = FaultInjection(parts[1], attempts)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    return CompileService(
        cache=cache,
        isolate=not getattr(args, "no_isolate", False),
        max_workers=getattr(args, "jobs", None),
        inject_for=inject_for,
    )


def _cmd_serve(args) -> int:
    """Batch-compile kernels through the sandboxed worker pool."""
    if args.bench:
        return _cmd_serve_bench(args)
    kernels = table1_kernels()
    if args.kernels:
        kernels = [k for k in kernels if args.kernels in k.name]
        if not kernels:
            print(f"no kernels match {args.kernels!r}", file=sys.stderr)
            return 2
    service = _make_service(args)
    # SIGTERM/SIGINT drain the pool instead of leaving zombie workers
    # and half-written scratch files behind.
    service.install_signal_handlers()
    options = CompileOptions(
        time_limit=args.budget,
        node_limit=args.node_limit,
        validate=not args.no_validate,
    )
    items = service.compile_many([k.spec() for k in kernels], options)
    failures = 0
    for item in items:
        if item.result is not None:
            marks = []
            if item.result.diagnostics.cache_hit:
                marks.append("cache")
            if item.result.diagnostics.attempts > 1:
                marks.append(f"attempt {item.result.diagnostics.attempts}")
            if item.result.degraded:
                marks.append("degraded")
            suffix = f" [{', '.join(marks)}]" if marks else ""
            print(f"{item.result.summary()}{suffix}")
        else:
            failures += 1
            print(f"{item.name}: FAILED after {item.elapsed:.2f}s -- "
                  f"{type(item.error).__name__}: {item.error}")
    print(service.stats.summary(), file=sys.stderr)
    if service.cache is not None:
        print(service.cache.stats.summary(), file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve_bench(args) -> int:
    """Open-loop overload soak of the compile gateway (DESIGN.md §12).

    Drives the admission-controlled gateway through unloaded ->
    sustained -> 4x burst -> recovery phases and gates on the issue's
    acceptance criteria: typed sheds only, bounded queue, admitted p99
    within factor of unloaded p99, >=90% single-flight collapse."""
    import json

    from .service import (
        SoakConfig,
        default_chaos_plan,
        render_soak_report,
        run_soak_sync,
    )

    config = SoakConfig(seed=args.seed)
    chaos = default_chaos_plan(args.seed) if args.chaos else None
    report = run_soak_sync(
        config, chaos=chaos, scratch_dir=args.cache_dir or None
    )
    print(render_soak_report(report))
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote soak report to {args.report}", file=sys.stderr)
    return 0 if report["ok"] else 1


def _cmd_fuzz(args) -> int:
    """Differential-fuzzing oracle: interpreter vs simulator."""
    from .validation.fuzz import (
        SMOKE_COUNT,
        render_fuzz_report,
        run_fuzz,
        smoke_options,
    )

    if args.smoke:
        count = max(args.count or 0, SMOKE_COUNT)
        options = smoke_options(args.seed)
        time_budget = None  # smoke MUST complete all kernels
    else:
        count = args.count or SMOKE_COUNT
        options = CompileOptions(
            time_limit=args.budget,
            node_limit=args.node_limit,
            validate=False,
            seed=args.seed,
        )
        time_budget = args.time_budget
    service = _make_service(args) if (args.isolate or args.cache_dir) else None
    report = run_fuzz(
        count=count,
        seed=args.seed,
        options=options,
        trials=args.trials,
        service=service,
        time_budget=time_budget,
    )
    print(render_fuzz_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def _cmd_conformance(args) -> int:
    """Conformance subsystem: guided fuzzing, golden corpus,
    metamorphic checks, repro replay/shrink."""
    import json as _json

    from . import conformance as conf

    service = (
        _make_service(args)
        if (getattr(args, "isolate", False) or getattr(args, "cache_dir", None))
        else None
    )

    if args.action in ("guided", "random"):
        report = conf.run_campaign(
            budget=args.budget,
            seed=args.seed,
            mode=args.action,
            corpus_dir=args.corpus_dir,
            service=service,
            trials=args.trials,
            time_budget=args.time_budget,
        )
        print(conf.render_campaign_report(report, verbose=args.verbose))
        if args.out:
            from .conformance.fuzzer import write_campaign_json

            write_campaign_json(report, args.out)
            print(f"campaign report written to {args.out}", file=sys.stderr)
        if report.divergent and args.shrink_divergences:
            options = conf.conformance_options(args.seed)
            predicate = conf.divergence_predicate(options, seed=args.seed)
            for spec, _ in report.divergent:
                shrunk = conf.shrink(spec, predicate)
                payload = conf.repro_payload(
                    shrunk.minimized, options, seed=args.seed
                )
                json_path, test_path = conf.write_repro(payload)
                print(
                    f"shrunk {spec.name}: size {shrunk.original_size} -> "
                    f"{shrunk.minimized_size}; wrote {json_path}, {test_path}"
                )
        return 0 if report.ok else 1

    if args.action == "bless":
        path = conf.bless(path=args.corpus, service=service)
        print(f"golden corpus blessed: {path}")
        return 0

    if args.action == "check":
        report = conf.check(path=args.corpus, service=service)
        print(report.render())
        return 0 if report.ok else 1

    if args.action == "metamorphic":
        from .validation.fuzz import random_spec
        from .seeding import stable_rng

        rng = stable_rng(args.seed, "cli-metamorphic")
        specs = [random_spec(rng, i) for i in range(args.count)]
        outcomes = conf.run_metamorphic(
            specs,
            conf.conformance_options(args.seed),
            seed=args.seed,
            trials=args.trials,
        )
        print(conf.render_outcomes(outcomes))
        return 0 if all(o.ok for o in outcomes) else 1

    if args.action == "replay":
        failures = 0
        for path in args.files:
            with open(path) as handle:
                payload = _json.load(handle)
            report = conf.replay_repro(payload)
            print(report.render())
            failures += 0 if report.ok else 1
        return 1 if failures else 0

    raise SystemExit(f"unknown conformance action {args.action!r}")


def _cmd_bench(args) -> int:
    """Stage-level perf benchmark; writes BENCH_egraph.json."""
    import json

    from .bench import check_gate, run_bench, write_report

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    report = run_bench(
        quick=args.quick,
        seed=args.seed,
        name_filter=args.kernels,
        phased=not args.no_phased,
    )
    gate = check_gate(report, baseline)
    write_report(report, gate, args.out)
    for kernel in report["kernels"]:
        stages = kernel["stages"]
        matcher = kernel["matcher"]
        print(
            f"{kernel['name']:<24} total {stages['total']:>7.3f}s  "
            f"sat {stages['saturate']:>7.3f}s  "
            f"nodes {kernel['egraph']['nodes']:>6}  "
            f"visit x{matcher['visit_ratio']:<6} "
            f"identical={matcher['extraction_identical']}"
        )
    for entry in report.get("phased", []):
        phased = entry["phased"]
        mono = entry["monolithic"]
        print(
            f"{entry['name']:<24} phased sat {phased['saturate_seconds']:>7.3f}s  "
            f"peak {phased['peak_nodes']:>6}  cycles {phased['cycles']:>8.0f}  "
            f"(naive {entry['naive_cycles']:.0f}; monolithic@"
            f"{phased['node_budget']}n: {mono['stop_reason']})"
        )
    print(f"wrote {args.out}")
    if not gate.ok:
        for failure in gate.failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate: ok")
    return 0


def _cmd_trace(args) -> int:
    """Compile one kernel with full observability and write the trace
    bundle: Chrome trace, raw spans, Prometheus + JSON metrics, flight
    recorder dump, and an HTML report.  A failed compile still dumps
    whatever the flight recorder captured (the post-mortem path)."""
    import json
    import os

    from .errors import CompileError
    from .observability import (
        Observability,
        render_html,
        render_text,
        validate_chrome_trace,
    )

    kernel = get_kernel(args.kernel)
    out_dir = args.out or os.path.join("trace-out", kernel.name)
    os.makedirs(out_dir, exist_ok=True)
    obs = Observability.on(
        recorder_capacity=args.recorder_capacity,
        postmortem_dir=out_dir,
    )
    options = CompileOptions(
        time_limit=args.budget,
        node_limit=args.node_limit,
        validate=not args.no_validate,
        vector_width=args.width,
        observability=obs,
    )

    result = None
    error = None
    try:
        result = compile_spec(kernel.spec(), options)
        data = result.observability
    except CompileError as exc:
        error = exc
        data = exc.partial.get("observability")
    if data is None:
        print(f"{kernel.name}: compile failed before any observability "
              f"data was captured: {error}", file=sys.stderr)
        return 1

    def _write(name: str, payload) -> str:
        path = os.path.join(out_dir, name)
        with open(path, "w") as handle:
            if isinstance(payload, str):
                handle.write(payload)
            else:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        return path

    written = [
        _write("trace.json", data.chrome_trace()),
        _write("spans.json", data.trace_json()),
        _write("metrics.prom", data.prometheus),
        _write("metrics.json", data.metrics),
        _write("recorder.json", data.recorder),
        _write("report.html", render_html(data, kernel=kernel.name)),
    ]
    events = validate_chrome_trace(data.chrome_trace())

    print(render_text(data, kernel=kernel.name))
    print(f"chrome trace: {events} events (schema valid)")
    for path in written:
        print(f"wrote {path}")
    if error is not None:
        print(f"compile FAILED: {type(error).__name__}: {error}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    """Chaos campaign: sweep the fault matrix x kernel grid under a
    pinned seed and fail on any invariant violation (DESIGN.md §11)."""
    import json

    from .chaos.campaign import (
        default_kernels,
        default_matrix,
        run_campaign,
        smoke_matrix,
    )

    matrix = smoke_matrix() if args.smoke else default_matrix()
    if args.filter:
        matrix = [c for c in matrix if args.filter in c.name]
        if not matrix:
            print(f"no matrix cells match {args.filter!r}", file=sys.stderr)
            return 2
    kernels = default_kernels()
    if args.kernels:
        kernels = [k for k in kernels if args.kernels in k.name]
        if not kernels:
            print(f"no chaos kernels match {args.kernels!r}", file=sys.stderr)
            return 2
    report = run_campaign(
        seed=args.seed,
        kernels=kernels,
        matrix=matrix,
        cell_budget=args.cell_budget,
    )
    print(report.summary())
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"campaign report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    """Inspect, verify, or clear the on-disk artifact cache."""
    from .service import ArtifactCache, code_fingerprint

    cache = ArtifactCache(args.dir)
    if args.action == "stats":
        entries = cache.entries()
        total = sum(e.size_bytes for e in entries)
        print(f"cache dir: {cache.root}")
        print(f"code version: {code_fingerprint()}")
        print(f"entries: {len(entries)} ({total / 1e6:.2f} MB)")
        stale = sum(1 for e in entries if e.code_version != cache.code_version)
        if stale:
            print(f"stale (old code version, will re-miss): {stale}")
        return 0
    if args.action == "list":
        for entry in cache.entries():
            print(
                f"{entry.key[:16]}  {entry.kernel:<24} "
                f"{entry.size_bytes:>8} B  code={entry.code_version}"
            )
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} files from {cache.root}")
        return 0
    if args.action == "fsck":
        report = cache.fsck(repair=args.repair)
        print(report.summary())
        return 0 if report.clean or args.repair else 1
    raise SystemExit(f"unknown cache action {args.action!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 1 benchmark kernels")

    p_compile = sub.add_parser("compile", help="compile one kernel")
    p_compile.add_argument("kernel")
    p_compile.add_argument("--budget", type=float, default=10.0)
    p_compile.add_argument("--node-limit", type=int, default=150_000)
    p_compile.add_argument("--width", type=int, default=4)
    p_compile.add_argument("--no-validate", action="store_true")
    p_compile.add_argument("--select-best", action="store_true")
    p_compile.add_argument("--emit-c", metavar="FILE")
    p_compile.add_argument("--show-c", action="store_true")
    p_compile.add_argument(
        "--phases",
        default="auto",
        choices=["auto", "on", "off"],
        help="phased saturation: auto engages the default plan for "
        "kernels past the size threshold (DESIGN.md §13)",
    )
    p_compile.add_argument(
        "--phase-plan",
        default=None,
        metavar="FILE",
        help="JSON phase plan to run instead of the built-in default "
        "(implies the plan is used whenever phasing engages)",
    )

    p_run = sub.add_parser("run", help="simulate one implementation")
    p_run.add_argument("kernel")
    p_run.add_argument(
        "--impl", default="diospyros", choices=["diospyros", *BASELINES]
    )
    p_run.add_argument("--budget", type=float, default=10.0)
    p_run.add_argument("--node-limit", type=int, default=150_000)
    p_run.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve",
        help="batch-compile kernels in sandboxed workers with the "
        "artifact cache",
    )
    p_serve.add_argument(
        "--kernels", default="", help="substring filter on kernel names"
    )
    p_serve.add_argument("--budget", type=float, default=10.0)
    p_serve.add_argument("--node-limit", type=int, default=150_000)
    p_serve.add_argument("--no-validate", action="store_true")
    p_serve.add_argument("--jobs", type=int, default=None)
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR")
    p_serve.add_argument(
        "--no-isolate",
        action="store_true",
        help="compile in-process (keeps cache/retries, drops sandboxing)",
    )
    p_serve.add_argument(
        "--inject",
        action="append",
        metavar="KERNEL:MODE[:ATTEMPTS]",
        help="fault injection for robustness drills, e.g. "
        "'matmul-2x2-2x2:sigkill:0'",
    )
    p_serve.add_argument(
        "--bench",
        action="store_true",
        help="run the open-loop overload soak against the async gateway "
        "instead of a batch compile (DESIGN.md §12)",
    )
    p_serve.add_argument(
        "--seed", type=int, default=0, help="soak schedule seed (--bench)"
    )
    p_serve.add_argument(
        "--chaos",
        action="store_true",
        help="inject the default gateway chaos plan during the soak "
        "(flood bursts, slow-loris clients, enqueue stalls)",
    )
    p_serve.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the full JSON soak report (--bench)",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzzing oracle: random kernels, interpreter "
        "vs simulator",
    )
    p_fuzz.add_argument("--count", type=int, default=None)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--trials", type=int, default=3)
    p_fuzz.add_argument("--budget", type=float, default=1.0)
    p_fuzz.add_argument("--node-limit", type=int, default=8_000)
    p_fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="truncate the campaign after this many seconds (reported)",
    )
    p_fuzz.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: >=200 kernels, tiny budgets, no truncation",
    )
    p_fuzz.add_argument("--isolate", action="store_true")
    p_fuzz.add_argument("--jobs", type=int, default=None)
    p_fuzz.add_argument("--cache-dir", default=None, metavar="DIR")
    p_fuzz.add_argument("--verbose", action="store_true")

    p_conf = sub.add_parser(
        "conformance",
        help="conformance subsystem: coverage-guided fuzzing, golden "
        "kernel corpus, metamorphic checks, repro replay",
    )
    p_conf.add_argument(
        "action",
        choices=["guided", "random", "bless", "check", "metamorphic", "replay"],
        help="guided/random: fuzz campaign (random = ablation baseline); "
        "bless/check: golden corpus; metamorphic: transform oracles; "
        "replay: re-run packaged repro JSON files",
    )
    p_conf.add_argument("files", nargs="*", help="repro JSON files (replay)")
    p_conf.add_argument("--budget", type=int, default=100,
                        help="campaign size in kernels")
    p_conf.add_argument("--seed", type=int, default=0)
    p_conf.add_argument("--trials", type=int, default=3)
    p_conf.add_argument("--count", type=int, default=5,
                        help="kernels for the metamorphic sweep")
    p_conf.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="persistent fuzz seed corpus directory")
    p_conf.add_argument("--corpus", default=None, metavar="FILE",
                        help="golden corpus path (default tests/golden/corpus.json)")
    p_conf.add_argument("--out", default=None, metavar="FILE",
                        help="write the campaign report JSON here")
    p_conf.add_argument("--time-budget", type=float, default=None,
                        help="truncate the campaign after this many seconds")
    p_conf.add_argument("--shrink-divergences", action="store_true",
                        help="shrink each divergent kernel and write a repro "
                        "under tests/repros/")
    p_conf.add_argument("--isolate", action="store_true")
    p_conf.add_argument("--jobs", type=int, default=None)
    p_conf.add_argument("--cache-dir", default=None, metavar="DIR")
    p_conf.add_argument("--verbose", action="store_true")

    p_bench = sub.add_parser(
        "bench",
        help="stage-level perf benchmark (writes BENCH_egraph.json)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: small kernel set, tighter limits",
    )
    p_bench.add_argument("--out", default="BENCH_egraph.json", metavar="FILE")
    p_bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline JSON to gate stage timings against",
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--kernels", default="", help="substring filter on kernel names"
    )
    p_bench.add_argument(
        "--no-phased",
        action="store_true",
        help="skip the phased-vs-monolithic large-kernel comparison",
    )

    p_trace = sub.add_parser(
        "trace",
        help="compile one kernel with full observability and write the "
        "trace bundle (Chrome trace, metrics, flight recorder, HTML "
        "report)",
    )
    p_trace.add_argument("kernel")
    p_trace.add_argument("--budget", type=float, default=10.0)
    p_trace.add_argument("--node-limit", type=int, default=150_000)
    p_trace.add_argument("--width", type=int, default=4)
    p_trace.add_argument("--no-validate", action="store_true")
    p_trace.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="output directory (default: trace-out/<kernel>)",
    )
    p_trace.add_argument("--recorder-capacity", type=int, default=128)

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection campaign over the service "
        "stack; fails on any invariant violation",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: one cell per fault family",
    )
    p_chaos.add_argument(
        "--filter", default="", metavar="SUBSTR",
        help="substring filter on matrix cells (site:action)",
    )
    p_chaos.add_argument(
        "--kernels", default="", help="substring filter on chaos kernels"
    )
    p_chaos.add_argument(
        "--cell-budget", type=float, default=60.0,
        help="bounded-wallclock invariant: per-cell ceiling in seconds",
    )
    p_chaos.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the campaign report JSON here",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect/verify/clear the artifact cache"
    )
    p_cache.add_argument("action", choices=["stats", "list", "clear", "fsck"])
    p_cache.add_argument("--dir", default=".repro-cache", metavar="DIR")
    p_cache.add_argument(
        "--repair",
        action="store_true",
        help="fsck: delete corrupt/stale entries, temp litter, and "
        "quarantine debris",
    )

    args = parser.parse_args(argv)
    return {
        "list": _cmd_list,
        "compile": _cmd_compile,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "fuzz": _cmd_fuzz,
        "conformance": _cmd_conformance,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "cache": _cmd_cache,
    }[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
