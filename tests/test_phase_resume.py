"""Phase checkpoint identity and SIGKILL mid-phase resume.

The satellite guarantee: every phase *round* checkpoints under a key
that includes the plan fingerprint, the phase index, and the
extend-round index -- so a crash-resume can never replay a phase-1
checkpoint into a phase-2 graph -- and a worker SIGKILLed while phase 2
is saturating resumes byte-identically to an uninterrupted compile.
"""

import dataclasses
import glob
import os
import subprocess
import sys

import pytest

from repro.chaos import FaultPlan, FaultSpec, active_plan, clear_plan
from repro.compiler import CompileOptions, compile_spec
from repro.frontend.lift import lift
from repro.phases import default_plan
from repro.service import (
    CheckpointStore,
    CompileService,
    RetryPolicy,
    SaturationState,
    WorkerLimits,
)
from repro.service.checkpoint import phase_saturation_key

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    clear_plan()
    yield
    clear_plan()


def _axpy2():
    def axpy2(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    return lift("axpy2", axpy2, [("a", 2), ("b", 2)], [("out", 2)])


#: Per-iteration checkpoints, phasing forced on (the kernel is tiny).
OPTS = CompileOptions(
    time_limit=5.0,
    node_limit=20_000,
    iter_limit=8,
    validate=False,
    checkpoint_stride=1,
    phases="on",
)


# ------------------------------------------------------------ key rules


def test_phase_key_separates_phases_rounds_and_plans():
    spec = _axpy2()
    fp = default_plan().fingerprint()
    base = phase_saturation_key(spec, OPTS, fp, 1, 0)
    assert phase_saturation_key(spec, OPTS, fp, 0, 0) != base
    assert phase_saturation_key(spec, OPTS, fp, 2, 0) != base
    assert phase_saturation_key(spec, OPTS, fp, 1, 1) != base
    assert phase_saturation_key(spec, OPTS, "other-plan", 1, 0) != base
    # ...and never collides with the monolithic key space.
    from repro.service import saturation_key

    assert base != saturation_key(spec, OPTS)


def test_phase_key_ignores_shrinkable_budgets():
    """Retries shrink node/time budgets and shift seeds; the phase key
    must hold still or the resumed attempt could not find the dead
    attempt's checkpoint."""
    spec = _axpy2()
    fp = default_plan().fingerprint()
    base = phase_saturation_key(spec, OPTS, fp, 1, 0)
    for change in (
        {"node_limit": 5_000},
        {"time_limit": 1.25},
        {"seed": 99},
        {"checkpoint_dir": "/elsewhere"},
    ):
        options = dataclasses.replace(OPTS, **change)
        assert phase_saturation_key(spec, options, fp, 1, 0) == base
    # Anything that changes what is compiled must move the key.
    wider = dataclasses.replace(OPTS, vector_width=8)
    assert phase_saturation_key(spec, wider, fp, 1, 0) != base


def test_checkpoint_store_phase_round_trip(tmp_path):
    spec = _axpy2()
    fp = default_plan().fingerprint()
    store = CheckpointStore(str(tmp_path))
    state = SaturationState(
        next_iteration=2,
        egraph={"nodes": [1, 2, 3]},
        applied_keys=set(),
        rule_stats={},
        iterations=[{"iteration": 0}, {"iteration": 1}],
    )
    ckpt = store.checkpointer_for_phase(spec, OPTS, fp, 1, 0)
    assert ckpt.save(state) is True
    assert ckpt.load() is not None
    # A different phase (or round) gets a different file and sees a
    # clean miss -- never phase 1's state.
    other = store.checkpointer_for_phase(spec, OPTS, fp, 2, 0)
    assert other.path != ckpt.path
    assert other.load() is None


# --------------------------------------------------- end-to-end resume


def test_sigkill_mid_phase2_resumes_byte_identical(tmp_path):
    """The acceptance scenario: attempt 0's worker is SIGKILLed while
    phase 2 (vectorize) is saturating -- cumulative runner iteration 4;
    the layout phase saturates in 2 -- and the retry resumes the
    interrupted phase round from its persisted checkpoint, finishing
    byte-identical to an uninterrupted compile."""
    spec = _axpy2()
    baseline = compile_spec(spec, OPTS)
    assert baseline.phases is not None and baseline.phases.completed
    assert len(baseline.report.iterations) > 4, (
        "kernel too small for the kill to land mid-phase-2"
    )

    service = CompileService(
        cache=None,
        policy=RetryPolicy(
            max_attempts=3,
            backoff_base=0.01,
            backoff_jitter=0.0,
            # Identical budgets across attempts: the resumed run must
            # match the baseline exactly, not a shrunk variant of it.
            shrink_factor=1.0,
        ),
        isolate=True,
        limits=WorkerLimits(kill_timeout=60.0),
        checkpoint_dir=str(tmp_path),
    )
    plan = FaultPlan(
        [FaultSpec("runner.iteration", "sigkill", nth=4, attempts=(0,))],
        seed=3,
    )
    with active_plan(plan):
        result = service.compile_spec(spec, OPTS)

    assert result.diagnostics.attempts == 2
    assert service.stats.worker_crashes == 1
    # The interrupted phase round resumed from its checkpoint instead
    # of starting over (completed phases re-run deterministically).
    assert result.report.resumed_from is not None

    # Byte-identical to the uninterrupted run: same phase trajectory,
    # same optimized term, same generated C.
    assert result.phases is not None and result.phases.completed
    assert result.phases.fingerprint == baseline.phases.fingerprint
    assert [len(p.rounds) for p in result.phases.phases] == [
        len(p.rounds) for p in baseline.phases.phases
    ]
    assert str(result.optimized) == str(baseline.optimized)
    assert result.program.fingerprint() == baseline.program.fingerprint()
    assert result.c_code == baseline.c_code
    assert result.cost == baseline.cost

    # Recovery left no scratch state behind: every phase round consumed
    # its checkpoint on completion.
    assert glob.glob(str(tmp_path / "*")) == []


_SPLIT_SCRIPT = """
import json
from repro.compiler import CompileOptions, compile_spec
from repro.kernels import get_kernel
from repro.phases import PhasePlan, default_plan, execute_plan


class Boundary:
    def __init__(self, name, term):
        self.name = name
        self.term = term


spec = get_kernel("2dconv-3x3-2x2").spec()
options = CompileOptions(time_limit=None, validate=False, phases="on", seed=0)
plan = default_plan(options.vector_width)
boundary = execute_plan(spec, options, PhasePlan("prefix", plan.phases[:1]))
resumed = execute_plan(
    Boundary(spec.name, boundary.term),
    options,
    PhasePlan("suffix", plan.phases[1:]),
)
print(json.dumps({
    "boundary": str(boundary.term),
    "final": str(resumed.term),
}, sort_keys=True))
"""


def _run_split(hashseed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SPLIT_SCRIPT],
        capture_output=True,
        env=env,
        cwd=REPO,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_phase_boundary_split_is_hashseed_independent():
    """The boundary term and the phases-N+1.. continuation from it are
    identical under different PYTHONHASHSEED values, so a resume on a
    different machine replays the same trajectory."""
    assert _run_split("1") == _run_split("2")
