"""Lifting reference kernels into vector-DSL specifications.

:func:`lift` runs a reference kernel on symbolic inputs and packages
the result: a ``(List e0 e1 ...)`` term with one scalar expression per
output element (paper Section 3.1's specification extraction), plus
the input/output array declarations the backend and the validator need.

The same reference function also runs on concrete data
(:func:`run_reference`), giving the trusted oracle used for
differential testing of the whole compiler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..dsl.ast import Term, lst
from .symbolic import OutputArray, Sym, SymbolicArray, wrap

__all__ = ["ArrayDecl", "Spec", "lift", "run_reference", "random_inputs"]

Shape = Union[int, Tuple[int, int]]


def _shape_length(shape: Shape) -> int:
    if isinstance(shape, int):
        return shape
    rows, cols = shape
    return rows * cols


def _shape_tuple(shape: Shape) -> Optional[Tuple[int, ...]]:
    return None if isinstance(shape, int) else tuple(shape)


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of one input or output array.

    ``shape`` is either a flat length or a (rows, cols) pair; storage
    is always flat row-major, matching the DSL's 1-D ``Get`` accesses
    ("2D arrays flattened to 1D access", paper Section 2).
    """

    name: str
    shape: Shape

    @property
    def length(self) -> int:
        return _shape_length(self.shape)


@dataclass
class Spec:
    """A lifted kernel specification.

    ``term`` is the top-level ``(List ...)`` whose i-th element is the
    closed-form scalar expression of the i-th output value (outputs
    concatenated in declaration order).
    """

    name: str
    inputs: Tuple[ArrayDecl, ...]
    outputs: Tuple[ArrayDecl, ...]
    term: Term

    @property
    def n_outputs(self) -> int:
        return sum(o.length for o in self.outputs)

    @property
    def input_names(self) -> List[str]:
        return [i.name for i in self.inputs]

    def __post_init__(self) -> None:
        if self.term.op != "List":
            raise ValueError("spec term must be a top-level List")
        if len(self.term.args) != self.n_outputs:
            raise ValueError(
                f"spec {self.name!r}: List has {len(self.term.args)} elements "
                f"but outputs declare {self.n_outputs}"
            )
        seen = set()
        for decl in (*self.inputs, *self.outputs):
            if decl.name in seen:
                raise ValueError(f"duplicate array name {decl.name!r}")
            seen.add(decl.name)


def lift(
    name: str,
    fn: Callable[..., None],
    inputs: Sequence[Tuple[str, Shape]],
    outputs: Sequence[Tuple[str, Shape]],
) -> Spec:
    """Symbolically evaluate ``fn`` and produce its :class:`Spec`.

    ``fn`` receives one :class:`SymbolicArray` per input followed by
    one :class:`OutputArray` per output and must write every output it
    means to define (unwritten elements lift to the constant 0, the
    C-buffer convention).
    """
    input_decls = tuple(ArrayDecl(n, s) for n, s in inputs)
    output_decls = tuple(ArrayDecl(n, s) for n, s in outputs)
    sym_inputs = [
        SymbolicArray(d.name, d.length, _shape_tuple(d.shape)) for d in input_decls
    ]
    sym_outputs = [OutputArray(d.length, _shape_tuple(d.shape)) for d in output_decls]
    fn(*sym_inputs, *sym_outputs)
    elements: List[Term] = []
    for out in sym_outputs:
        elements.extend(out.terms())
    return Spec(name, input_decls, output_decls, lst(*elements))


def run_reference(
    fn: Callable[..., None],
    spec: Spec,
    input_values: Mapping[str, Sequence[float]],
) -> List[float]:
    """Execute the reference kernel concretely; return the flattened
    outputs (declaration order).

    The inputs are the *flat* arrays of :class:`Spec`; they are
    re-wrapped with the declared shapes so the same kernel source runs
    unmodified.
    """
    concrete_inputs = []
    for decl in spec.inputs:
        flat = list(input_values[decl.name])
        if len(flat) != decl.length:
            raise ValueError(
                f"input {decl.name!r}: expected {decl.length} values, got {len(flat)}"
            )
        concrete_inputs.append(_ConcreteArray(flat, _shape_tuple(decl.shape)))
    concrete_outputs = [
        OutputArray(d.length, _shape_tuple(d.shape)) for d in spec.outputs
    ]
    fn(*concrete_inputs, *concrete_outputs)
    result: List[float] = []
    for out in concrete_outputs:
        for v in out.values:
            result.append(float(wrap(v).term.value) if isinstance(v, Sym) else float(v))
    return result


class _ConcreteArray:
    """Concrete counterpart of :class:`SymbolicArray`: same indexing
    protocol, backed by a flat list of floats."""

    def __init__(self, flat: List[float], shape: Optional[Tuple[int, ...]]):
        self._flat = flat
        self.shape = shape

    def __len__(self) -> int:
        if self.shape is not None:
            return self.shape[0]
        return len(self._flat)

    def flat(self, index: int) -> float:
        """Read by flat (row-major) index regardless of declared shape."""
        return self._flat[index]

    def __getitem__(self, index):
        if isinstance(index, tuple):
            row, col = index
            return self._flat[row * self.shape[1] + col]
        if self.shape is not None and len(self.shape) == 2:
            return _ConcreteRow(self, index)
        return self._flat[index]

    def __iter__(self):
        return (self[i] for i in range(len(self)))


class _ConcreteRow:
    def __init__(self, array: _ConcreteArray, row: int) -> None:
        if not 0 <= row < array.shape[0]:  # type: ignore[index]
            raise IndexError(f"row {row} out of range")
        self.array = array
        self.row = row

    def __len__(self) -> int:
        return self.array.shape[1]  # type: ignore[index]

    def __getitem__(self, col: int) -> float:
        return self.array[(self.row, col)]

    def __iter__(self):
        return (self[c] for c in range(len(self)))


def random_inputs(
    spec: Spec, rng: Optional[random.Random] = None, lo: float = -2.0, hi: float = 2.0
) -> Dict[str, List[float]]:
    """Random flat input arrays for differential testing."""
    rng = rng or random.Random(0)
    return {
        decl.name: [rng.uniform(lo, hi) for _ in range(decl.length)]
        for decl in spec.inputs
    }
