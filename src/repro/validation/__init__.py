"""Translation validation (paper Section 3.4): canonicalization over
real arithmetic plus randomized differential fallback."""

from .canon import (
    CanonLimits,
    CanonOverflow,
    Poly,
    Rational,
    canonicalize,
    equivalent,
)
from .validate import LaneResult, ValidationResult, flatten_to_scalars, validate

__all__ = [
    "CanonLimits",
    "CanonOverflow",
    "Poly",
    "Rational",
    "canonicalize",
    "equivalent",
    "LaneResult",
    "ValidationResult",
    "flatten_to_scalars",
    "validate",
]
