"""Backend: vector IR, lowering, LVN, and C-intrinsics code generation
(paper Section 4)."""

from . import vir
from .codegen import c_line_count, emit_c
from .lower import OUT, LoweringError, lower_spec_program, lower_term
from .lvn import eliminate_dead_code, optimize, run_lvn

__all__ = [
    "vir",
    "c_line_count",
    "emit_c",
    "OUT",
    "LoweringError",
    "lower_spec_program",
    "lower_term",
    "eliminate_dead_code",
    "optimize",
    "run_lvn",
]
