"""Pattern language and e-matching.

egg exposes a pattern DSL for simple syntactic rewrites (paper
Section 3.3); this module is our equivalent.  Patterns are terms whose
leaves may be *pattern variables*, written ``?x`` in the s-expression
syntax::

    (+ ?a (* ?b ?c))

E-matching searches the e-graph for every (e-class, substitution) pair
such that instantiating the pattern under the substitution yields a
term represented by that class.  The matcher is the classic recursive
backtracking procedure over e-nodes; it is not the fastest known
algorithm, but e-matching time is dominated by the custom vectorization
searchers in this workload, and the simple matcher is easy to verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from ..dsl.ast import Term
from ..dsl.parser import parse
from .egraph import EGraph, ENode

__all__ = [
    "Pattern",
    "PVar",
    "PNode",
    "pattern",
    "pattern_vars",
    "ematch",
    "match_in_class",
    "instantiate",
    "Subst",
]

#: A substitution binds pattern-variable names to e-class ids.
Subst = Dict[str, int]


@dataclass(frozen=True)
class PVar:
    """A pattern variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class PNode:
    """A concrete operator node in a pattern."""

    op: str
    args: Tuple["Pattern", ...] = ()
    value: Union[int, float, str, None] = None

    def __str__(self) -> str:
        if self.op == "Num":
            return str(self.value)
        if self.op == "Symbol":
            return str(self.value)
        head = self.value if self.op == "Call" else self.op
        if not self.args:
            return f"({head})"
        return f"({head} {' '.join(str(a) for a in self.args)})"


Pattern = Union[PVar, PNode]


def _from_term(term: Term) -> Pattern:
    """Convert a parsed term into a pattern, turning ``?x`` symbols
    into pattern variables."""
    if term.op == "Symbol" and str(term.value).startswith("?"):
        return PVar(str(term.value)[1:])
    return PNode(term.op, tuple(_from_term(a) for a in term.args), term.value)


def pattern(source: Union[str, Term, Pattern]) -> Pattern:
    """Build a pattern from s-expression text, a term, or pass a
    pattern through unchanged."""
    if isinstance(source, (PVar, PNode)):
        return source
    if isinstance(source, Term):
        return _from_term(source)
    return _from_term(parse(source))


def pattern_vars(pat: Pattern) -> List[str]:
    """All variable names occurring in the pattern, in first-seen order."""
    seen: List[str] = []

    def go(p: Pattern) -> None:
        if isinstance(p, PVar):
            if p.name not in seen:
                seen.append(p.name)
        else:
            for a in p.args:
                go(a)

    go(pat)
    return seen


def match_in_class(
    egraph: EGraph, pat: Pattern, eclass_id: int, subst: Subst = None
) -> Iterator[Subst]:
    """Yield every substitution under which ``pat`` matches the given
    e-class, extending ``subst``."""
    subst = subst or {}
    eclass_id = egraph.find(eclass_id)
    if isinstance(pat, PVar):
        bound = subst.get(pat.name)
        if bound is None:
            extended = dict(subst)
            extended[pat.name] = eclass_id
            yield extended
        elif egraph.find(bound) == eclass_id:
            yield subst
        return
    for node in egraph.nodes_of(eclass_id):
        if node.op != pat.op or node.value != pat.value:
            continue
        if len(node.children) != len(pat.args):
            continue
        yield from _match_children(egraph, pat.args, node.children, subst, 0)


def _match_children(
    egraph: EGraph,
    pats: Sequence[Pattern],
    children: Sequence[int],
    subst: Subst,
    index: int,
) -> Iterator[Subst]:
    if index == len(pats):
        yield subst
        return
    for extended in match_in_class(egraph, pats[index], children[index], subst):
        yield from _match_children(egraph, pats, children, extended, index + 1)


def ematch(egraph: EGraph, pat: Pattern, deadline=None) -> List[Tuple[int, Subst]]:
    """Match ``pat`` against every e-class; return (class id,
    substitution) pairs.  Multiple substitutions per class are all
    reported -- a rewrite may fire several ways on one class.

    ``deadline`` (a :class:`repro.egraph.scheduler.Deadline`) is polled
    between candidate classes; when it expires the matches found so far
    are returned, letting the saturation runner's wall-clock budget
    interrupt a long e-match mid-rule.
    """
    results: List[Tuple[int, Subst]] = []
    if isinstance(pat, PNode):
        # Only classes containing the root operator can match; the
        # e-graph's operator index prunes the scan.
        candidates = egraph.classes_with_op(pat.op)
    else:
        candidates = egraph.class_ids()
    for i, cid in enumerate(candidates):
        for subst in match_in_class(egraph, pat, cid):
            results.append((egraph.find(cid), subst))
        if deadline is not None and i % 16 == 0 and deadline.expired():
            break
    return results


def instantiate(egraph: EGraph, pat: Pattern, subst: Subst) -> int:
    """Add the instantiation of ``pat`` under ``subst`` to the e-graph
    and return its class id.  Every variable in the pattern must be
    bound."""
    if isinstance(pat, PVar):
        try:
            return egraph.find(subst[pat.name])
        except KeyError as exc:
            raise KeyError(f"unbound pattern variable ?{pat.name}") from exc
    children = tuple(instantiate(egraph, a, subst) for a in pat.args)
    return egraph.add(ENode(pat.op, children, pat.value))
