"""Durability tests for the crash-safe artifact cache.

The cache's contract: every read-path failure mode -- truncation, bit
flips, stale code versions, races, interrupted writes -- degrades to a
counted cache *miss*, never a crash and never a wrong result.
"""

import os
import pickle
import threading

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.kernels import make_matmul
from repro.service.cache import (
    ArtifactCache,
    cache_key,
    code_fingerprint,
    options_fingerprint,
    spec_fingerprint,
)

FAST = CompileOptions(time_limit=5.0, node_limit=20_000, iter_limit=15, validate=False)


@pytest.fixture(scope="module")
def compiled():
    kernel = make_matmul(2, 2, 2)
    return kernel.spec(), compile_spec(kernel.spec(), FAST)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"))


def _entry_path(cache, key):
    return cache._path(key)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


class TestKeys:
    def test_key_is_stable(self, compiled):
        spec, _ = compiled
        assert cache_key(spec, FAST) == cache_key(spec, FAST)

    def test_key_changes_with_options(self, compiled):
        spec, _ = compiled
        other = CompileOptions(time_limit=1.0, node_limit=20_000, iter_limit=15)
        assert cache_key(spec, FAST) != cache_key(spec, other)

    def test_key_changes_with_spec(self, compiled):
        spec, _ = compiled
        other = make_matmul(3, 3, 3).spec()
        assert spec_fingerprint(spec) != spec_fingerprint(other)
        assert cache_key(spec, FAST) != cache_key(other, FAST)

    def test_key_changes_with_code_version(self, compiled):
        spec, _ = compiled
        assert cache_key(spec, FAST, "aaaa") != cache_key(spec, FAST, "bbbb")

    def test_options_fingerprint_covers_rule_switches(self):
        a = options_fingerprint(FAST)
        b = options_fingerprint(
            CompileOptions(
                time_limit=5.0, node_limit=20_000, iter_limit=15,
                validate=False, enable_vector_rules=False,
            )
        )
        assert a != b

    def test_code_fingerprint_is_cached_and_short(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


# ----------------------------------------------------------------------
# Round trip + hit/miss accounting
# ----------------------------------------------------------------------


class TestRoundTrip:
    def test_put_get_roundtrip(self, cache, compiled):
        spec, result = compiled
        assert cache.store(spec, FAST, result)
        loaded = cache.lookup(spec, FAST)
        assert loaded is not None
        assert loaded.cost == result.cost
        assert len(loaded.program) == len(result.program)
        assert loaded.spec.name == spec.name
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_cold_lookup_is_a_miss(self, cache, compiled):
        spec, _ = compiled
        assert cache.lookup(spec, FAST) is None
        assert cache.stats.misses == 1

    def test_no_temp_litter_after_put(self, cache, compiled):
        spec, result = compiled
        cache.store(spec, FAST, result)
        litter = [n for n in os.listdir(cache.root) if n.startswith(".tmp-")]
        assert litter == []

    def test_unpicklable_result_degrades_to_not_cached(self, cache, compiled):
        spec, result = compiled
        import copy
        import dataclasses

        # Mutate a shallow copy so the module-scoped fixture stays clean.
        result_bad = copy.copy(result)
        result_bad.options = dataclasses.replace(
            result.options, extra_rules=(lambda: None,)  # closures don't pickle
        )
        assert not cache.put(cache.key_for(spec, FAST), result_bad)
        assert cache.stats.store_failures == 1


# ----------------------------------------------------------------------
# Corruption: every mode degrades to a miss
# ----------------------------------------------------------------------


class TestCorruption:
    def _stored(self, cache, compiled):
        spec, result = compiled
        key = cache.key_for(spec, FAST)
        cache.put(key, result)
        return key, _entry_path(cache, key)

    def test_truncated_file_is_a_miss(self, cache, compiled):
        key, path = self._stored(cache, compiled)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)  # quarantined

    def test_empty_file_is_a_miss(self, cache, compiled):
        key, path = self._stored(cache, compiled)
        open(path, "wb").close()
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_bit_flip_in_payload_is_a_miss(self, cache, compiled):
        key, path = self._stored(cache, compiled)
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_bit_flip_in_header_is_a_miss(self, cache, compiled):
        key, path = self._stored(cache, compiled)
        blob = bytearray(open(path, "rb").read())
        blob[len(b"RPROCACHE1\n") + 3] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert cache.get(key) is None

    def test_garbage_file_is_a_miss(self, cache, compiled):
        spec, _ = compiled
        key = cache.key_for(spec, FAST)
        with open(_entry_path(cache, key), "wb") as handle:
            handle.write(b"not a cache entry at all")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_wrong_pickle_payload_is_a_miss(self, cache, compiled):
        """A checksum-valid entry whose payload is not a CompileResult
        (e.g. written by a confused tool) must still miss."""
        spec, result = compiled
        key = cache.key_for(spec, FAST)
        cache.put(key, result)
        # Rewrite with a payload that unpickles to a plain dict.
        import hashlib, json, time as _time

        payload = pickle.dumps({"not": "a result"})
        header = json.dumps(
            {
                "format": "repro-cache-v1",
                "key": key,
                "code": cache.code_version,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "kernel": "x",
                "created": _time.time(),
            }
        ).encode()
        with open(_entry_path(cache, key), "wb") as handle:
            handle.write(b"RPROCACHE1\n" + header + b"\n" + payload)
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_stale_code_version_is_a_miss(self, tmp_path, compiled):
        spec, result = compiled
        old = ArtifactCache(str(tmp_path / "c"), code_version="old-code")
        old.store(spec, FAST, result)
        new = ArtifactCache(str(tmp_path / "c"), code_version="new-code")
        # Different code version => different key => plain miss.
        assert new.lookup(spec, FAST) is None
        # Even a forged same-key entry is rejected by the header check.
        forged_key = new.key_for(spec, FAST)
        os.replace(
            old._path(old.key_for(spec, FAST)), new._path(forged_key)
        )
        assert new.get(forged_key) is None
        assert new.stats.corrupt == 1


# ----------------------------------------------------------------------
# Crash safety + races
# ----------------------------------------------------------------------


class TestCrashSafety:
    def test_interrupted_write_leaves_no_entry(self, cache, compiled):
        """Simulate kill -9 mid-write: a partial temp file exists but
        was never published; reads miss, later writes succeed."""
        spec, result = compiled
        key = cache.key_for(spec, FAST)
        with open(os.path.join(cache.root, ".tmp-deadbeef-orphan"), "wb") as h:
            h.write(b"partial")
        assert cache.get(key) is None
        assert cache.put(key, result)
        assert cache.get(key) is not None

    def test_concurrent_writers_same_key(self, cache, compiled):
        spec, result = compiled
        key = cache.key_for(spec, FAST)
        errors = []

        def write():
            try:
                for _ in range(5):
                    assert cache.put(key, result)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.get(key) is not None
        litter = [n for n in os.listdir(cache.root) if n.startswith(".tmp-")]
        assert litter == []

    def test_concurrent_reader_during_writes(self, cache, compiled):
        spec, result = compiled
        key = cache.key_for(spec, FAST)
        cache.put(key, result)
        stop = threading.Event()
        errors = []

        def read():
            while not stop.is_set():
                try:
                    loaded = cache.get(key)
                    assert loaded is None or loaded.cost == result.cost
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        reader = threading.Thread(target=read)
        reader.start()
        for _ in range(20):
            cache.put(key, result)
        stop.set()
        reader.join()
        assert not errors


# ----------------------------------------------------------------------
# Management surface
# ----------------------------------------------------------------------


class TestManagement:
    def test_entries_and_clear(self, cache, compiled):
        spec, result = compiled
        cache.store(spec, FAST, result)
        entries = cache.entries()
        assert len(entries) == 1
        assert entries[0].kernel == spec.name
        assert entries[0].size_bytes > 0
        assert len(cache) == 1
        removed = cache.clear()
        assert removed == 1
        assert cache.entries() == []

    def test_clear_removes_quarantine_and_litter(self, cache, compiled):
        spec, result = compiled
        key = cache.key_for(spec, FAST)
        cache.put(key, result)
        path = _entry_path(cache, key)
        with open(path, "wb") as handle:
            handle.write(b"junk")
        assert cache.get(key) is None  # quarantines to .corrupt
        with open(os.path.join(cache.root, ".tmp-x-y"), "wb") as h:
            h.write(b"x")
        cache.clear()
        assert [
            n
            for n in os.listdir(cache.root)
            if n.endswith((".rcache", ".corrupt")) or n.startswith(".tmp-")
        ] == []
