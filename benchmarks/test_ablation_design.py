"""Design-choice ablations from DESIGN.md section 5.

* **LVN** (paper Section 4): local value numbering must collapse the
  unrolled output dramatically (QProd: >100k C++ lines -> <500 in the
  paper's scale).
* **Cost-model / no-shuffle target** (paper Section 6): the generated
  kernels depend on a fast unrestricted shuffle; on a machine without
  one, data movement dominates.
* **AC rules** (paper Section 3.3): full associativity/commutativity
  blows up the e-graph relative to the custom searchers.
"""

import pytest

from conftest import compile_cached
from repro.backend.codegen import c_line_count
from repro.evaluation.ablation import run_ac_ablation
from repro.evaluation.common import measure
from repro.kernels import make_matmul, make_qprod
from repro.machine import fusion_g3, no_shuffle_machine


class TestLvnAblation:
    def test_unrolled_line_collapse(self, benchmark):
        """Tree-expanding the unrolled QR 3x3 spec vs the shipping
        DAG-lowering + LVN pipeline (paper: >100k -> <500 lines)."""
        from repro.backend.lower import lower_spec_program
        from repro.kernels import make_qr

        kernel = make_qr(3)
        result = compile_cached(kernel)
        expanded = lower_spec_program(
            result.spec, result.spec.term, share_subterms=False
        )
        without = c_line_count(expanded)
        with_lvn = c_line_count(result.program)
        benchmark.pedantic(lambda: with_lvn, rounds=1, iterations=1)
        benchmark.extra_info.update(
            {"lines_tree_expanded": without, "lines_with_lvn": with_lvn}
        )
        print(f"\nLVN: {without} -> {with_lvn} C lines "
              f"({without / with_lvn:.0f}x; paper >100k -> <500)")
        assert without > 20 * with_lvn

    def test_lvn_preserves_output(self):
        from repro.machine import simulate

        kernel = make_qprod()
        result = compile_cached(kernel)
        inputs = kernel.random_inputs(1)
        raw = simulate(result.program_unoptimized, inputs).output("out")
        opt = simulate(result.program, inputs).output("out")
        assert raw == opt


class TestCostModelAblation:
    @pytest.mark.parametrize(
        "kernel", [make_matmul(3, 3, 3), make_matmul(4, 4, 4)], ids=lambda k: k.name
    )
    def test_no_shuffle_machine_slowdown(self, benchmark, kernel):
        compiled = compile_cached(kernel)
        fast, ok1 = measure(compiled.program, kernel, machine=fusion_g3())
        slow, ok2 = measure(compiled.program, kernel, machine=no_shuffle_machine())
        assert ok1 and ok2
        benchmark.pedantic(lambda: slow, rounds=1, iterations=1)
        benchmark.extra_info.update(
            {"fusion_cycles": fast, "no_shuffle_cycles": slow}
        )
        print(f"\n{kernel.name}: {fast} -> {slow} cycles without fast shuffle")
        assert slow > fast


class TestAcAblation:
    def test_ac_rules_grow_egraph(self, benchmark):
        result = benchmark.pedantic(
            run_ac_ablation, args=(make_matmul(2, 2, 2), 2.0), rounds=1, iterations=1
        )
        benchmark.extra_info.update(
            {
                "nodes_without_ac": result.nodes_without_ac,
                "nodes_with_ac": result.nodes_with_ac,
            }
        )
        print(
            f"\nAC ablation: {result.nodes_without_ac} -> "
            f"{result.nodes_with_ac} e-nodes ({result.growth_factor:.1f}x)"
        )
        assert result.growth_factor > 1.0
