"""Command-line interface for single-kernel workflows.

Examples::

    python -m repro list
    python -m repro compile matmul-2x3-3x3 --budget 10
    python -m repro compile 2dconv-3x5-3x3 --emit-c conv.c
    python -m repro run matmul-2x3-3x3 --impl nature

(The evaluation harness has its own CLI: ``python -m repro.evaluation``.)
"""

from __future__ import annotations

import argparse
import sys

from .baselines import BASELINES, baseline_program
from .compiler import CompileOptions, compile_spec
from .kernels import get_kernel, table1_kernels
from .machine import simulate


def _cmd_list(_args) -> int:
    print(f"{'name':<24}{'category':<10}{'size':<16}{'outputs':>8}")
    for kernel in table1_kernels():
        print(
            f"{kernel.name:<24}{kernel.category:<10}{kernel.size_label:<16}"
            f"{kernel.n_outputs:>8}"
        )
    return 0


def _cmd_compile(args) -> int:
    kernel = get_kernel(args.kernel)
    options = CompileOptions(
        time_limit=args.budget,
        node_limit=args.node_limit,
        validate=not args.no_validate,
        vector_width=args.width,
        select_best_candidate=args.select_best,
    )
    result = compile_spec(kernel.spec(), options)
    print(result.summary())
    if result.validation is not None:
        verdict = "PASSED" if result.validated else "FAILED"
        print(f"translation validation: {verdict} ({result.validation.methods_used})")
    print(f"saturation: {result.report.summary()}")
    print(f"IR opcode histogram: {result.program.opcode_histogram()}")
    if args.emit_c:
        with open(args.emit_c, "w") as handle:
            handle.write(result.c_code)
        print(f"wrote C intrinsics to {args.emit_c}")
    elif args.show_c:
        print(result.c_code)
    return 0 if (result.validation is None or result.validated) else 1


def _cmd_run(args) -> int:
    kernel = get_kernel(args.kernel)
    if args.impl == "diospyros":
        options = CompileOptions(
            time_limit=args.budget, node_limit=args.node_limit, validate=False
        )
        program = compile_spec(kernel.spec(), options).program
    else:
        program = baseline_program(args.impl, kernel)
        if program is None:
            print(f"{args.impl} does not provide {kernel.name}", file=sys.stderr)
            return 2
    inputs = kernel.random_inputs(args.seed)
    result = simulate(program, inputs)
    reference = kernel.reference_outputs(inputs)
    produced = result.output("out")[: len(reference)]
    correct = all(
        abs(a - b) <= 1e-4 * max(1.0, abs(b)) for a, b in zip(produced, reference)
    )
    print(f"{kernel.name} [{args.impl}]: {result.cycles:.0f} cycles, "
          f"{result.instructions} instructions, correct={correct}")
    return 0 if correct else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 1 benchmark kernels")

    p_compile = sub.add_parser("compile", help="compile one kernel")
    p_compile.add_argument("kernel")
    p_compile.add_argument("--budget", type=float, default=10.0)
    p_compile.add_argument("--node-limit", type=int, default=150_000)
    p_compile.add_argument("--width", type=int, default=4)
    p_compile.add_argument("--no-validate", action="store_true")
    p_compile.add_argument("--select-best", action="store_true")
    p_compile.add_argument("--emit-c", metavar="FILE")
    p_compile.add_argument("--show-c", action="store_true")

    p_run = sub.add_parser("run", help="simulate one implementation")
    p_run.add_argument("kernel")
    p_run.add_argument(
        "--impl", default="diospyros", choices=["diospyros", *BASELINES]
    )
    p_run.add_argument("--budget", type=float, default=10.0)
    p_run.add_argument("--node-limit", type=int, default=150_000)
    p_run.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    return {"list": _cmd_list, "compile": _cmd_compile, "run": _cmd_run}[
        args.command
    ](args)


if __name__ == "__main__":
    raise SystemExit(main())
