"""Table 1 reproduction: per-kernel compilation statistics.

The paper's Table 1 reports, for each of 21 kernels: compile time,
peak memory, and whether equality saturation timed out.  We report the
same columns from our compiler (memory via ``tracemalloc``, e-graph
size in nodes as an additional scale indicator) next to the paper's
published numbers for side-by-side comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..dsl.ast import unique_size
from ..kernels import table1_kernels
from ..kernels.base import Kernel
from .common import (
    Budget,
    DEFAULT_BUDGET,
    SweepError,
    compile_kernel_resilient,
    render_sweep_errors,
    render_table,
)

__all__ = ["Table1Row", "run_table1", "render_table1", "PAPER_TABLE1"]

#: The paper's Table 1: kernel name -> (compile time seconds, memory
#: MB, timed out).  Times marked with † in the paper (saturation
#: timeout at 180 s) are flagged True.
PAPER_TABLE1: Dict[str, tuple] = {
    "2dconv-3x3-2x2": (2.2, 145, False),
    "2dconv-3x3-3x3": (5.6, 145, False),
    "2dconv-3x5-3x3": (30.3, 626, False),
    "2dconv-4x4-3x3": (23.8, 370, False),
    "2dconv-8x8-3x3": (196, 3800, True),
    "2dconv-10x10-2x2": (21.6, 401, False),
    "2dconv-10x10-3x3": (204, 4100, True),
    "2dconv-10x10-4x4": (191, 5000, True),
    "2dconv-16x16-2x2": (68, 1200, False),
    "2dconv-16x16-3x3": (189, 4700, True),
    "2dconv-16x16-4x4": (237, 4400, True),
    "matmul-2x2-2x2": (1.9, 144, False),
    "matmul-2x3-3x3": (2.2, 136, False),
    "matmul-3x3-3x3": (2.7, 124, False),
    "matmul-4x4-4x4": (5.8, 130, False),
    "matmul-8x8-8x8": (202, 4000, True),
    "matmul-10x10-10x10": (210, 6000, True),
    "matmul-16x16-16x16": (218, 4500, True),
    "qprod-4-3-4-3": (6.7, 128, False),
    "qrdecomp-3x3": (278, 2200, True),
    "qrdecomp-4x4": (15900, 35400, True),
}


@dataclass
class Table1Row:
    kernel: str
    category: str
    size: str
    spec_nodes: int
    compile_time: float
    egraph_nodes: int
    peak_memory_mb: Optional[float]
    timed_out: bool
    paper_time: Optional[float] = None
    paper_memory_mb: Optional[float] = None
    paper_timed_out: Optional[bool] = None


def run_table1(
    budget: Budget = DEFAULT_BUDGET,
    kernels: Optional[Sequence[Kernel]] = None,
    track_memory: bool = True,
    errors: Optional[List[SweepError]] = None,
    service=None,
    **overrides,
) -> List[Table1Row]:
    """Compile every kernel and collect Table 1 statistics.

    A kernel whose compilation fails is recorded in ``errors`` (when a
    list is supplied) and skipped; the sweep always completes.  Pass a
    :class:`repro.service.CompileService` as ``service`` to run each
    kernel in a sandboxed worker with the artifact cache (warm-start
    reruns and per-kernel blast-radius containment).
    """
    rows: List[Table1Row] = []
    for kernel in kernels if kernels is not None else table1_kernels():
        spec = kernel.spec()
        result = compile_kernel_resilient(
            kernel, budget, errors=errors, service=service,
            track_memory=track_memory, **overrides,
        )
        if result is None:
            continue
        paper = PAPER_TABLE1.get(kernel.name)
        rows.append(
            Table1Row(
                kernel=kernel.name,
                category=kernel.category,
                size=kernel.size_label,
                spec_nodes=unique_size(spec.term),
                compile_time=result.compile_time,
                egraph_nodes=result.egraph_nodes,
                peak_memory_mb=(
                    result.peak_memory_bytes / 1e6
                    if result.peak_memory_bytes is not None
                    else None
                ),
                timed_out=result.timed_out,
                paper_time=paper[0] if paper else None,
                paper_memory_mb=paper[1] if paper else None,
                paper_timed_out=paper[2] if paper else None,
            )
        )
    return rows


def render_table1(
    rows: Sequence[Table1Row],
    budget: Budget = DEFAULT_BUDGET,
    errors: Optional[Sequence[SweepError]] = None,
) -> str:
    table = render_table(
        [
            "Benchmark",
            "Size",
            "Spec nodes",
            "Time (s)",
            "E-nodes",
            "Mem (MB)",
            "Timeout",
            "Paper t(s)",
            "Paper MB",
            "Paper TO",
        ],
        [
            [
                r.kernel,
                r.size,
                r.spec_nodes,
                r.compile_time,
                r.egraph_nodes,
                r.peak_memory_mb,
                "yes" if r.timed_out else "",
                r.paper_time,
                r.paper_memory_mb,
                "yes" if r.paper_timed_out else ("" if r.paper_timed_out is not None else "-"),
            ]
            for r in rows
        ],
        title=(
            f"Table 1 reproduction (saturation budget: {budget.seconds:.0f}s "
            f"~ paper {budget.paper_seconds:.0f}s, node limit {budget.node_limit})"
        ),
    )
    timeouts = sum(1 for r in rows if r.timed_out)
    paper_timeouts = sum(1 for r in rows if r.paper_timed_out)
    text = (
        f"{table}\n\nTimed out: {timeouts}/{len(rows)} "
        f"(paper: {paper_timeouts}/{len(rows)})"
    )
    if errors:
        text += "\n" + render_sweep_errors(errors)
    return text
