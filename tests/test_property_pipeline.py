"""Property-based tests of the full pipeline: for randomly generated
small kernels, saturation + extraction + lowering + simulation must
reproduce the reference semantics exactly.

This is the strongest invariant in the system -- it exercises the
rewrite rules, cost model, extractor, gather planner, LVN, and
simulator together on shapes no hand-written test enumerates.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compiler import CompileOptions, compile_spec
from repro.costs import DiospyrosCostModel
from repro.dsl import evaluate_output
from repro.dsl.ast import Term, get, lst, num
from repro.egraph import EGraph, Extractor, Runner
from repro.frontend.lift import ArrayDecl, Spec
from repro.machine import simulate
from repro.rules import build_ruleset
from repro.validation import validate

ARRAY_LEN = 8

_leaves = st.one_of(
    st.integers(min_value=0, max_value=2).map(num),
    st.tuples(
        st.sampled_from(["a", "b"]), st.integers(0, ARRAY_LEN - 1)
    ).map(lambda p: get(*p)),
)


def _compound(children):
    ops = st.sampled_from(["+", "-", "*"])
    return st.builds(
        lambda op, l, r: Term(op, (l, r)), ops, children, children
    )


_scalar_exprs = st.recursive(_leaves, _compound, max_leaves=6)

_specs = st.lists(_scalar_exprs, min_size=1, max_size=9).map(
    lambda elements: Spec(
        "prop",
        (ArrayDecl("a", ARRAY_LEN), ArrayDecl("b", ARRAY_LEN)),
        (ArrayDecl("o", len(elements)),),
        lst(*elements),
    )
)

_ENV = {
    "a": [1.5, -2.0, 3.0, 0.5, -1.0, 2.5, 4.0, -0.25],
    "b": [0.5, 1.0, -3.0, 2.0, 1.25, -0.75, 0.125, 5.0],
}

_OPTIONS = CompileOptions(
    time_limit=3.0, node_limit=20_000, iter_limit=20, validate=False
)


class TestPipelineSemantics:
    @given(_specs)
    @settings(max_examples=30, deadline=None)
    def test_compile_simulate_matches_interpreter(self, spec):
        expected = evaluate_output(spec.term, _ENV)
        result = compile_spec(spec, _OPTIONS)
        sim = simulate(result.program, _ENV)
        actual = sim.output("out")
        assert len(actual) == len(expected)
        for a, b in zip(actual, expected):
            assert abs(a - b) <= 1e-6 * max(1.0, abs(b))

    @given(_specs)
    @settings(max_examples=20, deadline=None)
    def test_saturation_preserves_extractable_semantics(self, spec):
        """Whatever term extraction picks, it evaluates like the spec
        (rule soundness, end to end)."""
        eg = EGraph()
        root = eg.add_term(spec.term)
        Runner(build_ruleset(4), iter_limit=15, node_limit=15_000).run(eg)
        term = Extractor(eg, DiospyrosCostModel()).extract(root).term
        expected = evaluate_output(spec.term, _ENV)
        actual = evaluate_output(term, _ENV)
        for a, b in zip(expected, actual[: len(expected)]):
            assert abs(a - b) <= 1e-9 * max(1.0, abs(a))

    @given(_specs)
    @settings(max_examples=15, deadline=None)
    def test_translation_validation_accepts_compiler_output(self, spec):
        eg = EGraph()
        root = eg.add_term(spec.term)
        Runner(build_ruleset(4), iter_limit=15, node_limit=15_000).run(eg)
        term = Extractor(eg, DiospyrosCostModel()).extract(root).term
        assert validate(spec, term).ok

    @given(_specs)
    @settings(max_examples=15, deadline=None)
    def test_lvn_preserves_semantics(self, spec):
        from dataclasses import replace

        raw = compile_spec(spec, replace(_OPTIONS, run_lvn=False))
        opt = compile_spec(spec, _OPTIONS)
        assert simulate(raw.program, _ENV).output("out") == simulate(
            opt.program, _ENV
        ).output("out")
        assert len(opt.program) <= len(raw.program)
