"""E-graphs and equality saturation (our reimplementation of the core
of egg [Willsey et al. 2021] that Diospyros builds on).

* :mod:`repro.egraph.unionfind` -- disjoint sets.
* :mod:`repro.egraph.egraph`    -- hashconsed e-graph with deferred
  congruence rebuilding.
* :mod:`repro.egraph.pattern`   -- pattern language and e-matching.
* :mod:`repro.egraph.rewrite`   -- syntactic and custom rewrites.
* :mod:`repro.egraph.scheduler` -- egg-style backoff rule scheduling
  and cooperative deadlines.
* :mod:`repro.egraph.runner`    -- the saturation loop with limits,
  watchdogs, and fault tolerance.
* :mod:`repro.egraph.extract`   -- monotonic-cost extraction.
"""

from .egraph import EClass, EGraph, ENode
from .extract import CostFunction, ExtractionResult, Extractor
from .pattern import (
    MatchCounters,
    PNode,
    PVar,
    Subst,
    ematch,
    instantiate,
    match_in_class,
    pattern,
)
from .rewrite import (
    CustomRewrite,
    Match,
    Rewrite,
    SearchContext,
    SyntacticRewrite,
    birewrite,
    rewrite,
)
from .runner import IterationReport, RunReport, Runner, StopReason
from .scheduler import BackoffScheduler, Deadline, RewriteScheduler, RuleStats
from .unionfind import UnionFind

__all__ = [
    "EClass",
    "EGraph",
    "ENode",
    "CostFunction",
    "ExtractionResult",
    "Extractor",
    "MatchCounters",
    "PNode",
    "PVar",
    "Subst",
    "ematch",
    "instantiate",
    "match_in_class",
    "pattern",
    "CustomRewrite",
    "Match",
    "Rewrite",
    "SearchContext",
    "SyntacticRewrite",
    "birewrite",
    "rewrite",
    "IterationReport",
    "RunReport",
    "Runner",
    "StopReason",
    "BackoffScheduler",
    "Deadline",
    "RewriteScheduler",
    "RuleStats",
    "UnionFind",
]
