"""Chaos subsystem: deterministic fault injection and invariant-checked
campaigns (DESIGN.md §11).

Import surface is deliberately small and cycle-free: this package
``__init__`` re-exports only the injection layer (a leaf over
``repro.errors`` / ``repro.seeding``), because the saturation runner,
the artifact cache, and the supervisor all import it at module load.
The campaign runner and the invariant catalog live in
:mod:`repro.chaos.campaign` and :mod:`repro.chaos.invariants`, which
import the service stack and must be imported as submodules (the CLI
and tests do).
"""

from .inject import (  # noqa: F401
    ALL_ACTIONS,
    FLAG_ACTIONS,
    PAYLOAD_ACTIONS,
    RAISE_ACTIONS,
    SITES,
    FaultPlan,
    FaultSpec,
    SiteInfo,
    active_plan,
    chaos_flag,
    chaos_point,
    clear_plan,
    current_plan,
    install_plan,
    set_attempt,
)

__all__ = [
    "ALL_ACTIONS",
    "FLAG_ACTIONS",
    "PAYLOAD_ACTIONS",
    "RAISE_ACTIONS",
    "SITES",
    "FaultPlan",
    "FaultSpec",
    "SiteInfo",
    "active_plan",
    "chaos_flag",
    "chaos_point",
    "clear_plan",
    "current_plan",
    "install_plan",
    "set_attempt",
]
