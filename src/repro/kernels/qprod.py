"""Quaternion / Euclidean Lie group product (the paper's QProd).

The paper describes QProd as "a Euclidean Lie group product [Sophus],
which includes quaternion and translational product components and
appears in applications such as pose estimation or camera models"
(Section 5.3), with size "4, 3, 4, 3": two (quaternion, translation)
pairs in, one pair out -- composition in SE(3):

    (q1, t1) * (q2, t2) = (q1 * q2,  q1 . t2 + t1)

where ``q1 . t2`` rotates ``t2`` by ``q1``.  Quaternions are stored
``[x, y, z, w]`` (Eigen's memory order, which Sophus uses).

The computation is pure sums of signed products -- exactly the shape
the multiply–accumulate searcher (with its subtraction patterns) is
built for.
"""

from __future__ import annotations

from .base import Kernel

__all__ = ["make_qprod", "qprod_reference"]


def qprod_reference(q1, t1, q2, t2, q_out, t_out) -> None:
    """Compose two (quaternion, translation) pairs."""
    x1, y1, z1, w1 = q1[0], q1[1], q1[2], q1[3]
    x2, y2, z2, w2 = q2[0], q2[1], q2[2], q2[3]

    # Hamilton product q1 * q2 (stored x, y, z, w).
    q_out[0] = w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2
    q_out[1] = w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2
    q_out[2] = w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2
    q_out[3] = w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2

    # Rotate t2 by q1 (t' = v + 2 w (u x v) + 2 u x (u x v), expanded
    # into the standard 9-product rotation-matrix form), then add t1.
    vx, vy, vz = t2[0], t2[1], t2[2]
    r00 = 1 - 2 * (y1 * y1 + z1 * z1)
    r01 = 2 * (x1 * y1 - w1 * z1)
    r02 = 2 * (x1 * z1 + w1 * y1)
    r10 = 2 * (x1 * y1 + w1 * z1)
    r11 = 1 - 2 * (x1 * x1 + z1 * z1)
    r12 = 2 * (y1 * z1 - w1 * x1)
    r20 = 2 * (x1 * z1 - w1 * y1)
    r21 = 2 * (y1 * z1 + w1 * x1)
    r22 = 1 - 2 * (x1 * x1 + y1 * y1)
    t_out[0] = r00 * vx + r01 * vy + r02 * vz + t1[0]
    t_out[1] = r10 * vx + r11 * vy + r12 * vz + t1[1]
    t_out[2] = r20 * vx + r21 * vy + r22 * vz + t1[2]


def make_qprod() -> Kernel:
    """The QProd kernel at the paper's size (4, 3, 4, 3)."""
    return Kernel(
        name="qprod-4-3-4-3",
        category="QProd",
        size_label="4, 3, 4, 3",
        reference=qprod_reference,
        inputs=(("q1", 4), ("t1", 3), ("q2", 4), ("t2", 3)),
        outputs=(("qo", 4), ("to", 3)),
        params={"quat": 4, "trans": 3},
    )
